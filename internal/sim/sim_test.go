package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

func elab(t *testing.T, src, top string) *netlist.Netlist {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nl, err := netlist.Elaborate(f, top, nil, liberty.Nangate45())
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return nl
}

// TestAdderSemantics validates the elaborator's ripple adder numerically.
func TestAdderSemantics(t *testing.T) {
	nl := elab(t, `
module add16(input [15:0] a, input [15:0] b, output [16:0] s);
    assign s = a + b;
endmodule`, "add16")
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := uint64(rng.Intn(1 << 16))
		b := uint64(rng.Intn(1 << 16))
		s.SetVector("a", a)
		s.SetVector("b", b)
		s.Eval()
		got, err := s.OutputVector("s")
		if err != nil {
			t.Fatal(err)
		}
		if got != a+b {
			t.Fatalf("%d + %d = %d, simulated %d", a, b, a+b, got)
		}
	}
}

func TestSubtractAndCompareSemantics(t *testing.T) {
	nl := elab(t, `
module cmp(input [11:0] a, input [11:0] b, output [11:0] d, output lt, output ge, output eq);
    assign d = a - b;
    assign lt = a < b;
    assign ge = a >= b;
    assign eq = a == b;
endmodule`, "cmp")
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := uint64(rng.Intn(1 << 12))
		b := uint64(rng.Intn(1 << 12))
		if i == 0 {
			b = a // force the equality case
		}
		s.SetVector("a", a)
		s.SetVector("b", b)
		s.Eval()
		d, _ := s.OutputVector("d")
		lt, _ := s.Output("lt")
		ge, _ := s.Output("ge")
		eq, _ := s.Output("eq")
		if d != (a-b)&0xFFF {
			t.Fatalf("%d - %d: got %d want %d", a, b, d, (a-b)&0xFFF)
		}
		if lt != (a < b) || ge != (a >= b) || eq != (a == b) {
			t.Fatalf("compare(%d, %d) = lt%v ge%v eq%v", a, b, lt, ge, eq)
		}
	}
}

func TestMultiplierSemantics(t *testing.T) {
	nl := elab(t, `
module mul(input [7:0] a, input [7:0] b, output [15:0] p);
    assign p = a * b;
endmodule`, "mul")
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		a := uint64(rng.Intn(256))
		b := uint64(rng.Intn(256))
		s.SetVector("a", a)
		s.SetVector("b", b)
		s.Eval()
		p, _ := s.OutputVector("p")
		if p != a*b {
			t.Fatalf("%d * %d = %d, simulated %d", a, b, a*b, p)
		}
	}
}

func TestShiftMuxTernarySemantics(t *testing.T) {
	nl := elab(t, `
module m(input [7:0] a, input [2:0] k, input s, output [7:0] shl, output [7:0] shr, output [7:0] y);
    assign shl = a << k;
    assign shr = a >> k;
    assign y = s ? (a ^ 8'hFF) : a;
endmodule`, "m")
	sim, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		a := uint64(rng.Intn(256))
		k := uint64(rng.Intn(8))
		sel := rng.Intn(2) == 1
		sim.SetVector("a", a)
		sim.SetVector("k", k)
		sim.Set("s", sel)
		sim.Eval()
		shl, _ := sim.OutputVector("shl")
		shr, _ := sim.OutputVector("shr")
		y, _ := sim.OutputVector("y")
		if shl != (a<<k)&0xFF {
			t.Fatalf("%d << %d: got %d", a, k, shl)
		}
		if shr != a>>k {
			t.Fatalf("%d >> %d: got %d", a, k, shr)
		}
		want := a
		if sel {
			want = a ^ 0xFF
		}
		if y != want {
			t.Fatalf("mux(%v, %d): got %d want %d", sel, a, y, want)
		}
	}
}

func TestSequentialCounter(t *testing.T) {
	nl := elab(t, `
module counter(input clk, input en, output [7:0] q);
    reg [7:0] q;
    always @(posedge clk)
        if (en) q <= q + 8'd1;
endmodule`, "counter")
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	s.Set("en", true)
	s.Run(5)
	if q, _ := s.OutputVector("q"); q != 5 {
		t.Fatalf("after 5 enabled cycles q = %d", q)
	}
	s.Set("en", false)
	s.Run(3)
	if q, _ := s.OutputVector("q"); q != 5 {
		t.Fatalf("hold failed, q = %d", q)
	}
	s.Set("en", true)
	s.Run(1)
	if q, _ := s.OutputVector("q"); q != 6 {
		t.Fatalf("re-enable failed, q = %d", q)
	}
}

func TestPipelineLatency(t *testing.T) {
	nl := elab(t, `
module pipe(input clk, input [3:0] d, output [3:0] q);
    reg [3:0] s1, s2, q;
    always @(posedge clk) begin
        s1 <= d;
        s2 <= s1;
        q <= s2;
    end
endmodule`, "pipe")
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	s.SetVector("d", 9)
	s.Run(2)
	if q, _ := s.OutputVector("q"); q != 0 {
		t.Fatalf("value arrived too early: q = %d", q)
	}
	s.Run(1)
	if q, _ := s.OutputVector("q"); q != 9 {
		t.Fatalf("after 3 cycles q = %d, want 9", q)
	}
}

func TestCombinationalLoopRejected(t *testing.T) {
	lib := liberty.Nangate45()
	nl := netlist.New("loop", lib)
	a := nl.NewNet("a")
	i1, _ := nl.AddCell(lib.Cell("INV_X1"), "", "loop", a)
	i2, _ := nl.AddCell(lib.Cell("INV_X1"), "", "loop", i1.Output)
	nl.SetInput(i1, 0, i2.Output)
	if _, err := New(nl); err == nil {
		t.Fatal("loop should be rejected")
	}
}

func TestErrorsOnUnknownSignals(t *testing.T) {
	nl := elab(t, "module m(input a, output y); assign y = ~a; endmodule", "m")
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set("nope", true); err == nil {
		t.Error("unknown input should error")
	}
	if err := s.SetVector("nope", 1); err == nil {
		t.Error("unknown vector should error")
	}
	if _, err := s.Output("nope"); err == nil {
		t.Error("unknown output should error")
	}
	if _, err := s.OutputVector("nope"); err == nil {
		t.Error("unknown output vector should error")
	}
}

// TestAllCellKinds exercises every combinational cell evaluation.
func TestAllCellKinds(t *testing.T) {
	lib := liberty.Nangate45()
	cases := []struct {
		cell string
		ins  []bool
		want bool
	}{
		{"INV_X1", []bool{true}, false},
		{"BUF_X1", []bool{true}, true},
		{"NAND2_X1", []bool{true, true}, false},
		{"NOR2_X1", []bool{false, false}, true},
		{"AND2_X1", []bool{true, true}, true},
		{"OR2_X1", []bool{false, true}, true},
		{"XOR2_X1", []bool{true, false}, true},
		{"XNOR2_X1", []bool{true, false}, false},
		{"MUX2_X1", []bool{false, true, true}, true}, // sel=1 picks input 1
		{"MUX2_X1", []bool{false, true, false}, false},
		{"AOI21_X1", []bool{true, true, false}, false},
		{"OAI21_X1", []bool{false, false, true}, true},
		{"NAND3_X1", []bool{true, true, false}, true},
		{"NOR3_X1", []bool{false, false, false}, true},
		{"AND3_X1", []bool{true, true, true}, true},
		{"OR3_X1", []bool{false, false, false}, false},
		{"NAND4_X1", []bool{true, true, true, true}, false},
		{"NOR4_X1", []bool{false, false, false, true}, false},
	}
	for _, c := range cases {
		nl := netlist.New("t", lib)
		ins := make([]*netlist.Net, len(c.ins))
		for i := range c.ins {
			n := nl.NewNet("")
			n.PI = true
			n.Name = "in" + string(rune('0'+i))
			nl.Inputs = append(nl.Inputs, n)
			ins[i] = n
		}
		cell, err := nl.AddCell(lib.Cell(c.cell), "", "t", ins...)
		if err != nil {
			t.Fatalf("%s: %v", c.cell, err)
		}
		cell.Output.PO = true
		cell.Output.Name = "y"
		nl.Outputs = append(nl.Outputs, cell.Output)
		s, err := New(nl)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range c.ins {
			s.Set("in"+string(rune('0'+i)), v)
		}
		s.Eval()
		got, _ := s.Output("y")
		if got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.cell, c.ins, got, c.want)
		}
	}
}

// TestWriteVerilogFunctionalRoundTrip is the strongest writer check: the
// structural netlist written by the tool re-elaborates to a circuit that
// behaves identically, cycle by cycle, under random stimulus.
func TestWriteVerilogFunctionalRoundTrip(t *testing.T) {
	src := `
module rt(input clk, input [3:0] a, input [3:0] b, input s, output [4:0] y, output r);
    reg [4:0] y;
    wire [4:0] sum;
    assign sum = a + b;
    always @(posedge clk) y <= s ? sum : {1'b0, a ^ b};
    assign r = a[0] & b[3];
endmodule`
	orig := elab(t, src, "rt")
	written := netlist.WriteVerilog(orig)
	f, err := verilog.Parse(written)
	if err != nil {
		t.Fatalf("written netlist does not parse: %v", err)
	}
	re, err := netlist.Elaborate(f, "rt", nil, liberty.Nangate45())
	if err != nil {
		t.Fatalf("written netlist does not elaborate: %v", err)
	}
	so, err := New(orig)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := New(re)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for cyc := 0; cyc < 40; cyc++ {
		a := uint64(rng.Intn(16))
		b := uint64(rng.Intn(16))
		s := rng.Intn(2) == 1
		so.SetVector("a", a)
		so.SetVector("b", b)
		so.Set("s", s)
		// The written netlist's ports are flattened: a[i] -> a_i.
		for i := 0; i < 4; i++ {
			sr.Set(fmt.Sprintf("a_%d", i), a>>uint(i)&1 == 1)
			sr.Set(fmt.Sprintf("b_%d", i), b>>uint(i)&1 == 1)
		}
		sr.Set("s", s)
		so.Step()
		so.Eval()
		sr.Step()
		sr.Eval()
		wantY, _ := so.OutputVector("y")
		var gotY uint64
		for i := 0; i < 5; i++ {
			bit, err := sr.Output(fmt.Sprintf("y_%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if bit {
				gotY |= 1 << uint(i)
			}
		}
		wantR, _ := so.Output("r")
		gotR, _ := sr.Output("r")
		if gotY != wantY || gotR != wantR {
			t.Fatalf("cycle %d: y=%d r=%v, want y=%d r=%v", cyc, gotY, gotR, wantY, wantR)
		}
	}
}
