// Package sim is a cycle-based functional simulator for gate-level
// netlists. It exists to keep the synthesis flow honest: the test suite
// simulates netlists before and after every optimization pass and asserts
// bit-exact equivalence (steady-state equivalence for retiming), and
// validates the RTL elaborator's arithmetic against Go integer semantics.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/liberty"
	"repro/internal/netlist"
)

// Simulator evaluates one netlist. Create with New, drive inputs with Set /
// SetVector, advance with Eval (combinational settle) or Step (settle plus
// one clock edge).
type Simulator struct {
	nl     *netlist.Netlist
	order  []*netlist.Cell // combinational cells in topological order
	values map[*netlist.Net]bool
	state  map[*netlist.Cell]bool // flip-flop Q values
	inputs map[string]*netlist.Net
}

// New builds a simulator; it fails on combinational loops.
func New(nl *netlist.Netlist) (*Simulator, error) {
	s := &Simulator{
		nl:     nl,
		values: make(map[*netlist.Net]bool, len(nl.Nets)),
		state:  make(map[*netlist.Cell]bool),
		inputs: make(map[string]*netlist.Net, len(nl.Inputs)),
	}
	if err := s.levelize(); err != nil {
		return nil, err
	}
	for _, n := range nl.Inputs {
		s.inputs[n.Name] = n
	}
	s.Reset()
	return s, nil
}

func (s *Simulator) levelize() error {
	indeg := make(map[*netlist.Cell]int)
	var ready []*netlist.Cell
	for _, c := range s.nl.Cells {
		if c.IsSeq() {
			continue
		}
		deps := 0
		for _, in := range c.Inputs {
			if in.Driver != nil && !in.Driver.IsSeq() {
				deps++
			}
		}
		indeg[c] = deps
		if deps == 0 {
			ready = append(ready, c)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].ID < ready[j].ID })
	for len(ready) > 0 {
		c := ready[0]
		ready = ready[1:]
		s.order = append(s.order, c)
		for _, p := range c.Output.Sinks {
			if p.Cell.IsSeq() {
				continue
			}
			indeg[p.Cell]--
			if indeg[p.Cell] == 0 {
				ready = append(ready, p.Cell)
			}
		}
	}
	if len(s.order) != len(indeg) {
		return fmt.Errorf("combinational loop: cannot simulate")
	}
	return nil
}

// Reset clears all flip-flops and input values to 0.
func (s *Simulator) Reset() {
	for _, c := range s.nl.Cells {
		if c.IsSeq() {
			s.state[c] = false
		}
	}
	for _, n := range s.nl.Inputs {
		s.values[n] = false
	}
}

// Set assigns one primary input bit by net name (e.g. "a[3]" or "cin").
func (s *Simulator) Set(name string, v bool) error {
	n, ok := s.inputs[name]
	if !ok {
		return fmt.Errorf("no primary input %q", name)
	}
	s.values[n] = v
	return nil
}

// SetVector assigns a multi-bit input ("a" drives a[0..w-1]) from an
// unsigned value, LSB first. A scalar input accepts bit 0.
func (s *Simulator) SetVector(base string, value uint64) error {
	if n, ok := s.inputs[base]; ok {
		s.values[n] = value&1 == 1
		return nil
	}
	found := false
	for i := 0; ; i++ {
		n, ok := s.inputs[fmt.Sprintf("%s[%d]", base, i)]
		if !ok {
			break
		}
		s.values[n] = value>>uint(i)&1 == 1
		found = true
	}
	if !found {
		return fmt.Errorf("no primary input vector %q", base)
	}
	return nil
}

// Eval propagates values through the combinational logic.
func (s *Simulator) Eval() {
	// Sources: constants and flip-flop outputs.
	for _, n := range s.nl.Nets {
		if n.Const {
			s.values[n] = n.Val
		}
	}
	for c, v := range s.state {
		s.values[c.Output] = v
	}
	for _, c := range s.order {
		s.values[c.Output] = s.evalCell(c)
	}
}

// Step evaluates combinational logic, then clocks every flip-flop once.
func (s *Simulator) Step() {
	s.Eval()
	next := make(map[*netlist.Cell]bool, len(s.state))
	for c := range s.state {
		next[c] = s.values[c.Inputs[0]]
	}
	s.state = next
}

// Run applies n clock cycles with the current inputs held.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
	s.Eval()
}

// Value returns a net's current value.
func (s *Simulator) Value(n *netlist.Net) bool { return s.values[n] }

// Output returns a primary output bit by name.
func (s *Simulator) Output(name string) (bool, error) {
	for _, o := range s.nl.Outputs {
		if o.Name == name {
			return s.values[o], nil
		}
	}
	return false, fmt.Errorf("no primary output %q", name)
}

// OutputVector assembles a multi-bit output ("sum" from sum[0..w-1]) into
// an unsigned value. A scalar output contributes bit 0.
func (s *Simulator) OutputVector(base string) (uint64, error) {
	var v uint64
	found := false
	for _, o := range s.nl.Outputs {
		if o.Name == base {
			if s.values[o] {
				v |= 1
			}
			found = true
			continue
		}
		var idx int
		if n, _ := fmt.Sscanf(o.Name, base+"[%d]", &idx); n == 1 && strings.HasPrefix(o.Name, base+"[") {
			if s.values[o] {
				v |= 1 << uint(idx)
			}
			found = true
		}
	}
	if !found {
		return 0, fmt.Errorf("no primary output vector %q", base)
	}
	return v, nil
}

// OutputBits snapshots every primary output by name.
func (s *Simulator) OutputBits() map[string]bool {
	out := make(map[string]bool, len(s.nl.Outputs))
	for _, o := range s.nl.Outputs {
		out[o.Name] = s.values[o]
	}
	return out
}

func (s *Simulator) evalCell(c *netlist.Cell) bool {
	in := func(i int) bool { return s.values[c.Inputs[i]] }
	switch c.Ref.Kind {
	case liberty.KindInv:
		return !in(0)
	case liberty.KindBuf:
		return in(0)
	case liberty.KindNand2:
		return !(in(0) && in(1))
	case liberty.KindNor2:
		return !(in(0) || in(1))
	case liberty.KindAnd2:
		return in(0) && in(1)
	case liberty.KindOr2:
		return in(0) || in(1)
	case liberty.KindXor2:
		return in(0) != in(1)
	case liberty.KindXnor2:
		return in(0) == in(1)
	case liberty.KindMux2:
		if in(2) {
			return in(1)
		}
		return in(0)
	case liberty.KindAoi21:
		return !((in(0) && in(1)) || in(2))
	case liberty.KindOai21:
		return !((in(0) || in(1)) && in(2))
	case liberty.KindNand3:
		return !(in(0) && in(1) && in(2))
	case liberty.KindNor3:
		return !(in(0) || in(1) || in(2))
	case liberty.KindAnd3:
		return in(0) && in(1) && in(2)
	case liberty.KindOr3:
		return in(0) || in(1) || in(2)
	case liberty.KindNand4:
		return !(in(0) && in(1) && in(2) && in(3))
	case liberty.KindNor4:
		return !(in(0) || in(1) || in(2) || in(3))
	case liberty.KindTie0:
		return false
	case liberty.KindTie1:
		return true
	}
	return false
}
