package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrInjected marks failures produced by the fault injector, so tests can
// tell an injected fault from a genuine one.
var ErrInjected = errors.New("resilience: injected fault")

// Mode selects how an injected fault manifests.
type Mode int

const (
	// ModeFail makes the guarded call return an error.
	ModeFail Mode = iota + 1
	// ModePanic makes the guarded call panic (the boundary must recover it).
	ModePanic
	// ModeHang blocks the guarded call until its context is done (the
	// caller's deadline must bound it).
	ModeHang
)

func (m Mode) String() string {
	switch m {
	case ModeFail:
		return "fail"
	case ModePanic:
		return "panic"
	case ModeHang:
		return "hang"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Fault schedules faults for one component. Calls lists the 1-based call
// numbers that fault; an empty list faults every call.
type Fault struct {
	Component string
	Mode      Mode
	Calls     []int
}

// Injector deterministically injects faults at guarded component
// boundaries: the Nth call to a named component fails, panics, or hangs as
// scheduled. A nil *Injector is inert. Safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	faults []Fault
	sticky map[string]Mode
	counts map[string]int
}

// NewInjector builds an injector over a fault schedule.
func NewInjector(faults ...Fault) *Injector {
	return &Injector{faults: faults, counts: make(map[string]int)}
}

// Set installs (mode > 0) or clears (mode 0) a sticky fault: every call to
// component faults with mode until cleared. The chaos harness drives
// outage windows through this — it turns a component off, lets breakers
// trip, then turns it back on and watches them close.
func (in *Injector) Set(component string, mode Mode) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.sticky == nil {
		in.sticky = make(map[string]Mode)
	}
	if mode == 0 {
		delete(in.sticky, component)
		return
	}
	in.sticky[component] = mode
}

// Fire is invoked at the start of each guarded call to component. It
// returns an injected error, panics, or blocks on ctx per the schedule;
// unscheduled calls pass through untouched.
func (in *Injector) Fire(ctx context.Context, component string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.counts[component]++
	n := in.counts[component]
	if mode, ok := in.sticky[component]; ok {
		in.mu.Unlock()
		switch mode {
		case ModePanic:
			panic(fmt.Sprintf("injected panic in %s (call %d)", component, n))
		case ModeHang:
			<-ctx.Done()
			return ctx.Err()
		default:
			return fmt.Errorf("%w: %s (call %d)", ErrInjected, component, n)
		}
	}
	var hit *Fault
	for i := range in.faults {
		f := &in.faults[i]
		if f.Component != component {
			continue
		}
		if len(f.Calls) == 0 {
			hit = f
			break
		}
		for _, c := range f.Calls {
			if c == n {
				hit = f
				break
			}
		}
		if hit != nil {
			break
		}
	}
	in.mu.Unlock()
	if hit == nil {
		return nil
	}
	switch hit.Mode {
	case ModePanic:
		panic(fmt.Sprintf("injected panic in %s (call %d)", component, n))
	case ModeHang:
		<-ctx.Done()
		return ctx.Err()
	default:
		return fmt.Errorf("%w: %s (call %d)", ErrInjected, component, n)
	}
}

// Calls reports how many times the component boundary has been crossed.
func (in *Injector) Calls(component string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[component]
}
