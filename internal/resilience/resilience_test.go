package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 42}
	q := p
	for attempt := 1; attempt <= 5; attempt++ {
		a, b := p.Backoff(attempt), q.Backoff(attempt)
		if a != b {
			t.Errorf("attempt %d: backoff not deterministic: %v vs %v", attempt, a, b)
		}
		if a < time.Millisecond || a > 20*time.Millisecond {
			t.Errorf("attempt %d: backoff %v outside [base/2, max]", attempt, a)
		}
	}
	// Exponential growth up to the cap (jitter is within [0.5, 1.0) of the
	// raw delay, so the raw delay doubles: 2, 4, 8, 16, 20-capped).
	if p.Backoff(4) <= p.Backoff(1) {
		t.Errorf("backoff should grow: %v then %v", p.Backoff(1), p.Backoff(4))
	}
	other := RetryPolicy{MaxAttempts: 5, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 43}
	same := true
	for attempt := 1; attempt <= 5; attempt++ {
		if p.Backoff(attempt) != other.Backoff(attempt) {
			same = false
		}
	}
	if same {
		t.Error("different seeds should jitter differently")
	}
}

func TestZeroBaseDelayNoSleep(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3}
	if d := p.Backoff(2); d != 0 {
		t.Errorf("zero base delay must not sleep, got %v", d)
	}
}

func TestExecuteRetriesThenSucceeds(t *testing.T) {
	calls := 0
	err := Execute(context.Background(), Op{Component: "c", Policy: RetryPolicy{MaxAttempts: 3}}, func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("should succeed on 3rd attempt: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestExecuteRetryExhausted(t *testing.T) {
	boom := errors.New("boom")
	err := Execute(context.Background(), Op{Component: "c", Policy: RetryPolicy{MaxAttempts: 2}}, func(ctx context.Context) error {
		return boom
	})
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("want ErrRetryExhausted, got %v", err)
	}
	if !errors.Is(err, boom) {
		t.Error("cause must be preserved through the wrap")
	}
	var re *Error
	if !errors.As(err, &re) || re.Attempts != 2 || re.Component != "c" {
		t.Errorf("classified error wrong: %+v", re)
	}
	if IsFatal(err) {
		t.Error("retry exhaustion is degradable, not fatal")
	}
}

func TestExecutePanicConverted(t *testing.T) {
	err := Execute(context.Background(), Op{Component: "c", Policy: RetryPolicy{MaxAttempts: 1}}, func(ctx context.Context) error {
		panic("kaboom")
	})
	if !errors.Is(err, ErrComponentPanic) {
		t.Fatalf("want ErrComponentPanic, got %v", err)
	}
	var re *Error
	if !errors.As(err, &re) {
		t.Fatal("not a *Error")
	}
	// The panic is one attempt; a single-attempt policy reports it as
	// exhausted retries wrapping the panic.
	if !errors.Is(err, ErrRetryExhausted) {
		t.Error("exhaustion wrap missing")
	}
}

func TestExecutePanicStackCaptured(t *testing.T) {
	err := Execute(context.Background(), Op{Component: "c"}, func(ctx context.Context) error {
		panic("kaboom")
	})
	var re *Error
	for e := err; errors.As(e, &re); {
		if errors.Is(re.Kind, ErrComponentPanic) {
			break
		}
		e = re.Cause
		re = nil
	}
	if re == nil || len(re.Stack) == 0 {
		t.Error("panic stack not captured")
	}
}

func TestExecutePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Execute(ctx, Op{Component: "c", Policy: RetryPolicy{MaxAttempts: 3}}, func(ctx context.Context) error {
		calls++
		return nil
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if calls != 0 {
		t.Error("fn must not run under a cancelled context")
	}
	if !IsFatal(err) {
		t.Error("cancellation is fatal")
	}
}

func TestExecuteTimeoutDuringHang(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	inj := NewInjector(Fault{Component: "c", Mode: ModeHang})
	start := time.Now()
	err := Execute(ctx, Op{Component: "c", Policy: RetryPolicy{MaxAttempts: 3}, Injector: inj}, func(ctx context.Context) error {
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("hang not bounded by deadline: %v", elapsed)
	}
	if !IsFatal(err) {
		t.Error("timeout is fatal")
	}
}

func TestExecuteCtxErrorNotRetried(t *testing.T) {
	calls := 0
	err := Execute(context.Background(), Op{Component: "c", Policy: RetryPolicy{MaxAttempts: 3}}, func(ctx context.Context) error {
		calls++
		return context.DeadlineExceeded
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if calls != 1 {
		t.Errorf("ctx errors must not be retried, calls = %d", calls)
	}
}

func TestInjectorNthCall(t *testing.T) {
	inj := NewInjector(Fault{Component: "c", Mode: ModeFail, Calls: []int{2}})
	ctx := context.Background()
	if err := inj.Fire(ctx, "c"); err != nil {
		t.Errorf("call 1 should pass: %v", err)
	}
	if err := inj.Fire(ctx, "c"); !errors.Is(err, ErrInjected) {
		t.Errorf("call 2 should fault: %v", err)
	}
	if err := inj.Fire(ctx, "c"); err != nil {
		t.Errorf("call 3 should pass: %v", err)
	}
	if err := inj.Fire(ctx, "other"); err != nil {
		t.Errorf("other components untouched: %v", err)
	}
	if inj.Calls("c") != 3 {
		t.Errorf("calls = %d, want 3", inj.Calls("c"))
	}
}

func TestNilInjectorInert(t *testing.T) {
	var inj *Injector
	if err := inj.Fire(context.Background(), "c"); err != nil {
		t.Fatal(err)
	}
	if inj.Calls("c") != 0 {
		t.Error("nil injector should count nothing")
	}
}

func TestContextErrorClassification(t *testing.T) {
	e := ContextError(CompSynth, context.DeadlineExceeded)
	if !errors.Is(e, ErrTimeout) || errors.Is(e, ErrCancelled) {
		t.Errorf("deadline -> ErrTimeout, got %v", e)
	}
	e = ContextError(CompSynth, context.Canceled)
	if !errors.Is(e, ErrCancelled) {
		t.Errorf("cancel -> ErrCancelled, got %v", e)
	}
}

func TestDegradationReport(t *testing.T) {
	var r DegradationReport
	if r.Degraded() {
		t.Error("empty report is not degraded")
	}
	r.Record(CompMentor, "proceed without design characteristics", errors.New("x"))
	r.Record(CompExpert, "emit unrefined draft", errors.New("y"))
	if !r.Degraded() {
		t.Error("report with events is degraded")
	}
	if r.Of(CompMentor) == nil || r.Of(CompRAGEmbed) != nil {
		t.Error("Of lookup wrong")
	}
	comps := r.Components()
	if len(comps) != 2 || comps[0] != CompMentor || comps[1] != CompExpert {
		t.Errorf("components = %v", comps)
	}
	var nilRep *DegradationReport
	if nilRep.Degraded() || nilRep.Of("x") != nil || nilRep.Components() != nil {
		t.Error("nil report must be inert")
	}
}
