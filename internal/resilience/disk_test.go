package resilience

import (
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
	"testing"
)

func TestDiskInjectorNilIsInert(t *testing.T) {
	var in *DiskInjector
	n, err := in.Write(100)
	if n != 100 || err != nil {
		t.Fatalf("nil injector Write = (%d, %v), want (100, nil)", n, err)
	}
	if err := in.Sync(); err != nil {
		t.Fatalf("nil injector Sync = %v", err)
	}
	if in.Killed() || in.Calls(DiskWrite) != 0 {
		t.Fatal("nil injector must report no state")
	}
}

func TestDiskInjectorFailAndShort(t *testing.T) {
	in := NewDiskInjector(
		DiskFault{Op: DiskWrite, Mode: DiskFail, Calls: []int{1}},
		DiskFault{Op: DiskWrite, Mode: DiskShort, Calls: []int{2}},
	)
	n, err := in.Write(100)
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("call 1: got (%d, %v), want clean failure", n, err)
	}
	n, err = in.Write(100)
	if n != 50 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("call 2: got (%d, %v), want short write of 50", n, err)
	}
	n, err = in.Write(100)
	if n != 100 || err != nil {
		t.Fatalf("call 3: got (%d, %v), want unfaulted pass-through", n, err)
	}
	if in.Calls(DiskWrite) != 3 {
		t.Fatalf("Calls(write) = %d, want 3", in.Calls(DiskWrite))
	}
}

func TestDiskInjectorKillIsSticky(t *testing.T) {
	in := NewDiskInjector(DiskFault{Op: DiskWrite, Mode: DiskKill, Calls: []int{2}, Frac: 0.25})
	if n, err := in.Write(100); n != 100 || err != nil {
		t.Fatalf("call 1 should pass: (%d, %v)", n, err)
	}
	n, err := in.Write(100)
	if n != 25 || !errors.Is(err, ErrDiskKilled) {
		t.Fatalf("kill call: got (%d, %v), want 25 bytes then ErrDiskKilled", n, err)
	}
	if !in.Killed() {
		t.Fatal("Killed() should report true after the kill fires")
	}
	if n, err := in.Write(10); n != 0 || !errors.Is(err, ErrDiskKilled) {
		t.Fatalf("post-kill write: got (%d, %v), want (0, ErrDiskKilled)", n, err)
	}
	if err := in.Sync(); !errors.Is(err, ErrDiskKilled) {
		t.Fatalf("post-kill sync: got %v, want ErrDiskKilled", err)
	}
}

func TestDiskInjectorSyncFault(t *testing.T) {
	in := NewDiskInjector(DiskFault{Op: DiskSync, Mode: DiskFail})
	if err := in.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync = %v, want injected failure", err)
	}
	if n, err := in.Write(5); n != 5 || err != nil {
		t.Fatalf("writes must be unaffected by a sync-only schedule: (%d, %v)", n, err)
	}
}

func TestIsRetryableDisk(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{io.ErrShortWrite, true},
		{fmt.Errorf("wrapped: %w", io.ErrShortWrite), true},
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
		{ErrDiskKilled, false},
		{os.ErrClosed, false},
		{syscall.ENOSPC, false},
		{syscall.EIO, false},
		{syscall.EROFS, false},
		{errors.New("mystery disk error"), false},
	}
	for _, c := range cases {
		if got := IsRetryableDisk(c.err); got != c.want {
			t.Errorf("IsRetryableDisk(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
