// Package resilience is the fault-tolerant execution substrate of the
// ChatLS serving path. Every component call the pipeline makes —
// CircuitMentor analysis, SynthRAG retrieval, LLM generation, SynthExpert
// refinement, synthesis-tool execution — runs behind a guarded boundary
// that provides:
//
//   - a typed error taxonomy (ErrTimeout, ErrCancelled, ErrBudgetExceeded,
//     ErrComponentPanic, ErrRetryExhausted) so callers can distinguish
//     "give up on this request" from "degrade and continue";
//   - panic recovery, converting panics anywhere below the boundary into
//     ErrComponentPanic instead of crashing the process;
//   - retry with deterministic, seed-driven jittered backoff — no
//     wall-clock randomness, so every experiment and test is reproducible;
//   - seeded fault injection (fail / panic / hang the Nth call to a named
//     component) for the fault-injection test suite.
//
// The package is a leaf: it imports nothing from the rest of the repo, so
// every layer (synth, llm, synthrag, the pipeline facade) can depend on it.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime/debug"
	"strings"
	"time"
)

// Component names used at the pipeline's guarded boundaries.
const (
	CompMentor      = "circuitmentor"
	CompRAGEmbed    = "synthrag/embed"
	CompRAGRetrieve = "synthrag/retrieve"
	CompGenerate    = "llm/generate"
	CompExpert      = "synthexpert"
	CompSynth       = "synth"
	CompRemoteCache = "remotecache"
)

// The error taxonomy. Every guarded failure wraps exactly one of these
// sentinels (plus the underlying cause), so callers classify with errors.Is.
var (
	// ErrTimeout: the context deadline expired inside a component call.
	ErrTimeout = errors.New("resilience: timeout")
	// ErrCancelled: the context was cancelled inside a component call.
	ErrCancelled = errors.New("resilience: cancelled")
	// ErrBudgetExceeded: a step/command budget ran out (e.g. a script tried
	// to execute more commands than Session.MaxCommands allows).
	ErrBudgetExceeded = errors.New("resilience: budget exceeded")
	// ErrComponentPanic: a component panicked and the boundary recovered it.
	ErrComponentPanic = errors.New("resilience: component panic")
	// ErrRetryExhausted: a component kept failing after every retry attempt.
	ErrRetryExhausted = errors.New("resilience: retries exhausted")
)

// Error is a classified failure from a guarded component call.
type Error struct {
	Component string
	Kind      error // one of the taxonomy sentinels
	Attempts  int   // attempts made before giving up (0 = not applicable)
	Cause     error // underlying failure (last attempt's error, recovered panic, ctx error)
	Stack     []byte
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %v", e.Component, e.Kind)
	if e.Attempts > 1 {
		fmt.Fprintf(&b, " after %d attempts", e.Attempts)
	}
	if e.Cause != nil {
		fmt.Fprintf(&b, ": %v", e.Cause)
	}
	return b.String()
}

// Unwrap exposes both the taxonomy sentinel and the cause to errors.Is/As.
func (e *Error) Unwrap() []error {
	var out []error
	if e.Kind != nil {
		out = append(out, e.Kind)
	}
	if e.Cause != nil {
		out = append(out, e.Cause)
	}
	return out
}

// IsFatal reports whether the error means the whole request should abort
// (cancellation or deadline) rather than degrade to a weaker configuration.
func IsFatal(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrCancelled)
}

// ctxKind maps a context error onto its taxonomy sentinel.
func ctxKind(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrTimeout
	}
	return ErrCancelled
}

// ContextError classifies a context error for a component. Use at points
// that observe ctx.Err() directly (e.g. the synthesis command-exec loop).
func ContextError(component string, err error) *Error {
	return &Error{Component: component, Kind: ctxKind(err), Cause: err}
}

// RetryPolicy controls retry-with-backoff around a component call. The
// jitter is derived from Seed and the attempt number only, never from the
// wall clock, so a given policy always produces the same delay sequence.
type RetryPolicy struct {
	MaxAttempts int           // total attempts (0 or less = 1, no retry)
	BaseDelay   time.Duration // first backoff; doubles per attempt (0 = no sleep)
	MaxDelay    time.Duration // backoff cap (0 = uncapped)
	Seed        int64         // jitter seed
}

// DefaultRetryPolicy is the serving-path default: three attempts with a few
// milliseconds of jittered backoff.
func DefaultRetryPolicy(seed int64) RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: seed}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	return p
}

// Backoff returns the deterministic jittered delay after the attempt-th
// failure (1-based): exponential growth capped at MaxDelay, scaled by a
// seed-derived factor in [0.5, 1.0).
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < attempt && (p.MaxDelay <= 0 || d < p.MaxDelay); i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d", p.Seed, attempt)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}

// sleep waits for d, returning early with the context error if cancelled.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Op names one guarded component call.
type Op struct {
	Component string
	Policy    RetryPolicy
	Injector  *Injector // nil outside the fault-injection suite
}

// Execute runs fn behind the full boundary: fault injection, panic
// recovery, retry with deterministic backoff, and context classification.
// The returned error (if any) is always a *Error from the taxonomy:
//
//   - context cancellation/deadline  -> ErrCancelled / ErrTimeout (fatal,
//     never retried);
//   - a panic in fn                  -> ErrComponentPanic (retried);
//   - persistent failure             -> ErrRetryExhausted wrapping the last
//     attempt's error.
func Execute(ctx context.Context, op Op, fn func(context.Context) error) error {
	pol := op.Policy.withDefaults()
	var last error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return &Error{Component: op.Component, Kind: ctxKind(err), Attempts: attempt - 1, Cause: err}
		}
		err := guarded(ctx, op, fn)
		if err == nil {
			return nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, ErrTimeout) || errors.Is(err, ErrCancelled) {
			return &Error{Component: op.Component, Kind: ctxKind(err), Attempts: attempt, Cause: err}
		}
		last = err
		if attempt < pol.MaxAttempts {
			if serr := sleep(ctx, pol.Backoff(attempt)); serr != nil {
				return &Error{Component: op.Component, Kind: ctxKind(serr), Attempts: attempt, Cause: serr}
			}
		}
	}
	return &Error{Component: op.Component, Kind: ErrRetryExhausted, Attempts: pol.MaxAttempts, Cause: last}
}

// guarded runs one attempt: injector first (so injected panics and hangs
// exercise the same recovery as real ones), then fn, with panics converted
// into typed errors.
func guarded(ctx context.Context, op Op, fn func(context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Error{
				Component: op.Component,
				Kind:      ErrComponentPanic,
				Cause:     fmt.Errorf("panic: %v", r),
				Stack:     debug.Stack(),
			}
		}
	}()
	if ferr := op.Injector.Fire(ctx, op.Component); ferr != nil {
		return ferr
	}
	return fn(ctx)
}

// Degradation is one recorded fallback: a component failed after retries
// and the pipeline continued in a weaker configuration instead of erroring.
type Degradation struct {
	Component string
	Fallback  string // what the pipeline did instead
	Err       error  // the classified failure that triggered the fallback
}

// DegradationReport collects what degraded during one pipeline call. It is
// attached to the customization result so callers (and the experiment
// harness) can tell a full-strength answer from a degraded one.
type DegradationReport struct {
	Events []Degradation
}

// Record appends one degradation event.
func (r *DegradationReport) Record(component, fallback string, err error) {
	r.Events = append(r.Events, Degradation{Component: component, Fallback: fallback, Err: err})
}

// Degraded reports whether anything degraded.
func (r *DegradationReport) Degraded() bool { return r != nil && len(r.Events) > 0 }

// Of returns the event for a component, or nil.
func (r *DegradationReport) Of(component string) *Degradation {
	if r == nil {
		return nil
	}
	for i := range r.Events {
		if r.Events[i].Component == component {
			return &r.Events[i]
		}
	}
	return nil
}

// Components lists the degraded component names in order.
func (r *DegradationReport) Components() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.Events))
	for i, ev := range r.Events {
		out[i] = ev.Component
	}
	return out
}

func (r *DegradationReport) String() string {
	if !r.Degraded() {
		return "no degradation"
	}
	var b strings.Builder
	for i, ev := range r.Events {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s degraded (%s): %v", ev.Component, ev.Fallback, ev.Err)
	}
	return b.String()
}
