package resilience

import (
	"errors"
	"io"
	"net"
	"syscall"
)

// RetryBounded runs op up to attempts times (attempts <= 0 selects 1),
// stopping early when it succeeds or when retryable reports the error is not
// worth another attempt. It returns the number of failed attempts and the
// final error (nil on success), so callers can account every failure in
// their metrics without keeping their own loop.
//
// This is the one bounded-retry loop shared by the durable stores: the QoR
// log's append path (retryable = IsRetryableDisk) and the remote-cache
// client's HTTP operations (retryable = IsRetryableNet) both classify with
// their own predicate but retry with the same shape. Unlike Execute it adds
// no backoff, panic recovery, or context plumbing — it is for tight local
// loops over operations that either succeed quickly or should stop being
// hammered.
func RetryBounded(attempts int, retryable func(error) bool, op func() error) (failures int, err error) {
	if attempts <= 0 {
		attempts = 1
	}
	for attempt := 1; attempt <= attempts; attempt++ {
		if err = op(); err == nil {
			return failures, nil
		}
		failures++
		if retryable == nil || !retryable(err) {
			return failures, err
		}
	}
	return failures, err
}

// IsRetryableNet classifies a network-I/O error as transient (worth retrying
// the request against the same endpoint) or terminal (the endpoint is gone;
// the caller should degrade instead of hammering it). Timeouts and
// mid-flight connection drops are transient — the peer was there and may
// answer a retry; a refused or unreachable connection means nothing is
// listening, which retries will not fix on the timescale of one request.
func IsRetryableNet(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.EHOSTUNREACH) ||
		errors.Is(err, syscall.ENETUNREACH) {
		return false
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return true
	}
	return false
}
