package resilience

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
)

func TestRetryBoundedSucceedsAfterTransientFailures(t *testing.T) {
	transient := errors.New("transient")
	calls := 0
	failures, err := RetryBounded(3, func(error) bool { return true }, func() error {
		calls++
		if calls < 3 {
			return transient
		}
		return nil
	})
	if err != nil || calls != 3 || failures != 2 {
		t.Fatalf("got err=%v calls=%d failures=%d, want success on 3rd call with 2 failures", err, calls, failures)
	}
}

func TestRetryBoundedStopsOnTerminalError(t *testing.T) {
	terminal := errors.New("terminal")
	calls := 0
	failures, err := RetryBounded(5, func(error) bool { return false }, func() error {
		calls++
		return terminal
	})
	if !errors.Is(err, terminal) || calls != 1 || failures != 1 {
		t.Fatalf("got err=%v calls=%d failures=%d, want 1 terminal failure", err, calls, failures)
	}
}

func TestRetryBoundedExhaustsAttempts(t *testing.T) {
	transient := errors.New("transient")
	calls := 0
	failures, err := RetryBounded(3, func(error) bool { return true }, func() error {
		calls++
		return transient
	})
	if !errors.Is(err, transient) || calls != 3 || failures != 3 {
		t.Fatalf("got err=%v calls=%d failures=%d, want exhaustion after 3", err, calls, failures)
	}
}

func TestRetryBoundedZeroAttemptsRunsOnce(t *testing.T) {
	calls := 0
	if _, err := RetryBounded(0, nil, func() error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("got err=%v calls=%d, want one successful call", err, calls)
	}
}

// timeoutErr implements net.Error with Timeout() true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestIsRetryableNet(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{syscall.ECONNREFUSED, false},
		{fmt.Errorf("dial: %w", syscall.EHOSTUNREACH), false},
		{syscall.ECONNRESET, true},
		{fmt.Errorf("write: %w", syscall.EPIPE), true},
		{io.ErrUnexpectedEOF, true},
		{timeoutErr{}, true},
		{&net.OpError{Op: "read", Err: timeoutErr{}}, true},
		{errors.New("some application error"), false},
	}
	for _, c := range cases {
		if got := IsRetryableNet(c.err); got != c.want {
			t.Errorf("IsRetryableNet(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
