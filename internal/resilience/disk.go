package resilience

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
	"syscall"
)

// The disk-I/O fault class. Durable state (the QoR log) fails in ways the
// component-call injector cannot express: a write that lands only partially,
// an fsync the kernel refuses, a process killed with half a record on disk.
// DiskInjector models those three at the file-operation boundary so the
// log's recovery and degradation paths are exercised by seeded tests
// instead of trusted.

// ErrDiskKilled marks every operation after an injected mid-write kill: the
// simulated process is dead, so nothing it attempts afterwards can reach the
// disk. It is always a fatal (non-retryable) error.
var ErrDiskKilled = errors.New("resilience: disk killed mid-write")

// DiskOp names the file operations the disk injector can fault.
type DiskOp string

const (
	// DiskWrite is a file write (append of a log record).
	DiskWrite DiskOp = "write"
	// DiskSync is an fsync/Flush making written bytes durable.
	DiskSync DiskOp = "sync"
)

// DiskMode selects how an injected disk fault manifests.
type DiskMode int

const (
	// DiskFail makes the operation fail cleanly: no bytes reach the disk.
	DiskFail DiskMode = iota + 1
	// DiskShort makes a write land partially (a prefix of the buffer) and
	// then fail with io.ErrShortWrite — the classic torn-record producer.
	DiskShort
	// DiskKill writes a prefix and then kills the simulated process: the
	// faulted operation and every later one fail with ErrDiskKilled. Tests
	// reopen the path afterwards to exercise crash recovery.
	DiskKill
)

func (m DiskMode) String() string {
	switch m {
	case DiskFail:
		return "fail"
	case DiskShort:
		return "short-write"
	case DiskKill:
		return "kill"
	}
	return fmt.Sprintf("diskmode(%d)", int(m))
}

// DiskFault schedules faults for one operation kind. Calls lists the
// 1-based operation numbers that fault; an empty list faults every call.
// Frac is the fraction of the buffer written before a DiskShort/DiskKill
// fault fires (0 selects one half).
type DiskFault struct {
	Op    DiskOp
	Mode  DiskMode
	Calls []int
	Frac  float64
}

// DiskInjector deterministically faults file operations: the Nth write or
// sync fails, lands short, or kills the writer per the schedule. A nil
// *DiskInjector is inert. Safe for concurrent use.
type DiskInjector struct {
	mu     sync.Mutex
	faults []DiskFault
	counts map[DiskOp]int
	killed bool
}

// NewDiskInjector builds a disk injector over a fault schedule.
func NewDiskInjector(faults ...DiskFault) *DiskInjector {
	return &DiskInjector{faults: faults, counts: make(map[DiskOp]int)}
}

// hit returns the scheduled fault for the nth call of op, nil when none.
func (in *DiskInjector) hit(op DiskOp, n int) *DiskFault {
	for i := range in.faults {
		f := &in.faults[i]
		if f.Op != op {
			continue
		}
		if len(f.Calls) == 0 {
			return f
		}
		for _, c := range f.Calls {
			if c == n {
				return f
			}
		}
	}
	return nil
}

// Write is consulted before writing an n-byte buffer. It returns how many
// bytes the caller may actually write and the error to return after writing
// them (nil, n on an unfaulted call). After a DiskKill fault, every
// subsequent operation fails with ErrDiskKilled and writes nothing.
func (in *DiskInjector) Write(n int) (int, error) {
	if in == nil {
		return n, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.killed {
		return 0, ErrDiskKilled
	}
	in.counts[DiskWrite]++
	f := in.hit(DiskWrite, in.counts[DiskWrite])
	if f == nil {
		return n, nil
	}
	frac := f.Frac
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	switch f.Mode {
	case DiskShort:
		return int(float64(n) * frac), fmt.Errorf("%w: %w", ErrInjected, io.ErrShortWrite)
	case DiskKill:
		in.killed = true
		return int(float64(n) * frac), ErrDiskKilled
	default:
		return 0, fmt.Errorf("%w: write failed", ErrInjected)
	}
}

// Sync is consulted before an fsync. It returns the error the sync should
// fail with, or nil to let it through.
func (in *DiskInjector) Sync() error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.killed {
		return ErrDiskKilled
	}
	in.counts[DiskSync]++
	f := in.hit(DiskSync, in.counts[DiskSync])
	if f == nil {
		return nil
	}
	if f.Mode == DiskKill {
		in.killed = true
		return ErrDiskKilled
	}
	return fmt.Errorf("%w: fsync failed", ErrInjected)
}

// Killed reports whether a DiskKill fault has fired.
func (in *DiskInjector) Killed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.killed
}

// Calls reports how many times the operation has been attempted.
func (in *DiskInjector) Calls(op DiskOp) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// IsRetryableDisk classifies a disk-I/O error as transient (worth retrying
// the operation after rewinding) or fatal (the medium can no longer be
// trusted; the caller should degrade to memory-only operation instead of
// hammering a sick disk or aborting requests). Short writes and interrupted
// syscalls are transient; a killed writer, a closed or missing file, a full
// or read-only filesystem, and any unclassified error are fatal.
func IsRetryableDisk(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrDiskKilled) || errors.Is(err, os.ErrClosed) ||
		errors.Is(err, fs.ErrNotExist) || errors.Is(err, fs.ErrPermission) {
		return false
	}
	if errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EROFS) ||
		errors.Is(err, syscall.EIO) || errors.Is(err, syscall.EBADF) {
		return false
	}
	if errors.Is(err, io.ErrShortWrite) || errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) {
		return true
	}
	return false
}
