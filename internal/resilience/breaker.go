package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen marks calls rejected because a circuit breaker is open:
// the component has failed enough consecutive times that further attempts
// would only burn retries. Like other non-fatal taxonomy errors, callers
// degrade and continue; the breaker itself probes for recovery.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is the circuit-breaker state machine position.
type BreakerState int32

const (
	// BreakerClosed: normal operation, calls flow through.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the open dwell elapsed; a bounded probe budget is
	// let through to test recovery.
	BreakerHalfOpen
	// BreakerOpen: calls are rejected without being attempted.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes one circuit breaker.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that trips the breaker
	// from closed to open (default 5).
	Failures int
	// OpenFor is how long the breaker dwells open before admitting
	// half-open probes (default 5s).
	OpenFor time.Duration
	// Probes bounds how many probe calls may be in flight at once while
	// half-open (default 1).
	Probes int
	// Successes is how many probe successes close the breaker again
	// (default 1).
	Successes int
	// Now supplies the clock; nil means time.Now. Tests and the chaos
	// harness inject a seeded clock here for determinism.
	Now func() time.Time
	// OnOpen/OnClose fire (outside the breaker lock) on each transition
	// to open and on each half-open -> closed recovery. Used for
	// warn-once logging and metrics.
	OnOpen  func()
	OnClose func()
}

func (c *BreakerConfig) fill() {
	if c.Failures <= 0 {
		c.Failures = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	if c.Successes <= 0 {
		c.Successes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Breaker is a closed/open/half-open circuit breaker with a bounded
// half-open probe budget. Callers pair every admitted call (Allow() ==
// true) with exactly one Success or Failure so probe slots are returned.
// A nil *Breaker is inert: Allow always admits, outcomes are dropped.
type Breaker struct {
	mu        sync.Mutex
	cfg       BreakerConfig
	state     BreakerState
	fails     int // consecutive failures while closed
	openedAt  time.Time
	probes    int // probes in flight while half-open
	successes int // probe successes while half-open
	opens     int64
}

// NewBreaker builds a breaker; zero-valued cfg fields get defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.fill()
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed. While open it flips to
// half-open once the dwell has elapsed and admits a probe; while
// half-open it admits calls up to the probe budget.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
			b.state = BreakerHalfOpen
			b.probes = 1
			b.successes = 0
			return true
		}
		return false
	default: // half-open
		if b.probes < b.cfg.Probes {
			b.probes++
			return true
		}
		return false
	}
}

// Success records a successful call. Closed: resets the consecutive
// failure count. Half-open: returns the probe slot and closes the breaker
// once enough probes succeeded.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	var fire func()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		b.successes++
		if b.successes >= b.cfg.Successes {
			b.state = BreakerClosed
			b.fails = 0
			fire = b.cfg.OnClose
		}
	}
	// Late successes from calls admitted before an open are ignored.
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// Failure records a failed call. Closed: trips to open after Failures
// consecutive failures. Half-open: a failed probe reopens immediately.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	var fire func()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Failures {
			fire = b.trip()
		}
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		fire = b.trip()
	}
	// Late failures while already open are ignored.
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// Drop returns an admitted call's slot without a success/failure verdict
// — used when the caller's own context was cancelled before the component
// was actually exercised, which proves nothing about its health. Closed:
// no-op. Half-open: frees the probe slot for the next caller.
func (b *Breaker) Drop() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probes > 0 {
		b.probes--
	}
}

// trip moves to open and returns the OnOpen hook. Caller holds b.mu.
func (b *Breaker) trip() func() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.fails = 0
	b.opens++
	return b.cfg.OnOpen
}

// State returns the current state. A nil breaker reads as closed.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// BreakerError wraps ErrBreakerOpen for a component so callers see the
// standard taxonomy shape.
func BreakerError(component string) *Error {
	return &Error{Component: component, Kind: ErrBreakerOpen}
}
