package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var opened, closed int
	b := NewBreaker(BreakerConfig{
		Failures: 3, OpenFor: time.Second, Now: clk.now,
		OnOpen:  func() { opened++ },
		OnClose: func() { closed++ },
	})
	if b.State() != BreakerClosed {
		t.Fatal("breaker should start closed")
	}
	// Two failures with a success in between: consecutive count resets.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures must not trip")
	}
	b.Failure()
	if b.State() != BreakerOpen || opened != 1 {
		t.Fatalf("state=%v opened=%d, want open after 3 consecutive failures", b.State(), opened)
	}
	if b.Allow() {
		t.Fatal("open breaker must reject")
	}

	// Dwell elapses: one probe admitted, further calls rejected.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker should admit a probe after OpenFor")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("probe budget of 1 must reject a second concurrent probe")
	}
	b.Success()
	if b.State() != BreakerClosed || closed != 1 {
		t.Fatalf("state=%v closed=%d, want closed after probe success", b.State(), closed)
	}
	if b.Opens() != 1 {
		t.Fatalf("opens=%d, want 1", b.Opens())
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Failures: 1, OpenFor: time.Second, Now: clk.now})
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("want open after single failure (Failures=1)")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("want probe after dwell")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe must reopen")
	}
	if b.Allow() {
		t.Fatal("reopened breaker must reject until the dwell elapses again")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("want a fresh probe after the second dwell")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("want closed after successful probe")
	}
	if b.Opens() != 2 {
		t.Fatalf("opens=%d, want 2", b.Opens())
	}
}

func TestBreakerProbeBudgetAndSuccessThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Failures: 1, OpenFor: time.Second, Probes: 2, Successes: 2, Now: clk.now})
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() || !b.Allow() {
		t.Fatal("want 2 concurrent probes")
	}
	if b.Allow() {
		t.Fatal("third concurrent probe must be rejected")
	}
	b.Success()
	if b.State() != BreakerHalfOpen {
		t.Fatal("one of two required successes should stay half-open")
	}
	// Returned probe slot is reusable while half-open.
	if !b.Allow() {
		t.Fatal("returned probe slot should be reusable")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("want closed after reaching the success threshold")
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must admit")
	}
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed || b.Opens() != 0 {
		t.Fatal("nil breaker must read as closed")
	}
}

func TestBreakerErrorTaxonomy(t *testing.T) {
	err := BreakerError(CompMentor)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("BreakerError must wrap ErrBreakerOpen")
	}
	if IsFatal(err) {
		t.Fatal("breaker-open is a degradation, not a fatal error")
	}
	if err.Component != CompMentor {
		t.Fatalf("component = %q", err.Component)
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerHalfOpen: "half-open", BreakerOpen: "open",
	} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestInjectorStickyFaults(t *testing.T) {
	in := NewInjector()
	ctx := context.Background()
	if err := in.Fire(ctx, CompMentor); err != nil {
		t.Fatalf("no sticky fault installed: %v", err)
	}
	in.Set(CompMentor, ModeFail)
	for i := 0; i < 3; i++ {
		if err := in.Fire(ctx, CompMentor); !errors.Is(err, ErrInjected) {
			t.Fatalf("sticky fault call %d: %v", i, err)
		}
	}
	if err := in.Fire(ctx, CompExpert); err != nil {
		t.Fatalf("other components must be unaffected: %v", err)
	}
	in.Set(CompMentor, 0)
	if err := in.Fire(ctx, CompMentor); err != nil {
		t.Fatalf("cleared sticky fault must pass through: %v", err)
	}
	if got := in.Calls(CompMentor); got != 5 {
		t.Fatalf("calls = %d, want 5", got)
	}
	// nil injector is inert.
	var nilIn *Injector
	nilIn.Set(CompMentor, ModeFail)
	if err := nilIn.Fire(ctx, CompMentor); err != nil {
		t.Fatalf("nil injector: %v", err)
	}
}
