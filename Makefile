GO ?= go

.PHONY: build test short race vet ci serve bench

build:
	$(GO) build ./...

# Full suite, including the fault-injection tests (resilience_test.go).
test:
	$(GO) test ./...

# Fast subset: skips the slow database-build experiments.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Run the serving daemon (builds the SynthRAG database first, ~a minute).
serve:
	$(GO) run ./cmd/chatlsd -addr :8080

# Micro-benchmarks: substrate and serving-path cache costs. Override BENCH
# to regenerate the paper tables instead (e.g. make bench BENCH=Table3).
BENCH ?= Elaborate|Compile|Customize|Embed
bench:
	$(GO) test -bench='$(BENCH)' -benchmem -run=^$$ .

ci: build vet race
