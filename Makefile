GO ?= go

.PHONY: build test short race vet ci serve bench bench-compare bench-gate bench-gate-baseline memprofile batch-race fuzz-smoke crash-recovery remote-cache-e2e chaos-soak check

build:
	$(GO) build ./...

# Full suite, including the fault-injection tests (resilience_test.go).
test:
	$(GO) test ./...

# Fast subset: skips the slow database-build experiments.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Run the serving daemon (builds the SynthRAG database first, ~a minute).
serve:
	$(GO) run ./cmd/chatlsd -addr :8080

# Micro-benchmarks: substrate and serving-path cache costs. Override BENCH
# to regenerate the paper tables instead (e.g. make bench BENCH=Table3).
BENCH ?= Elaborate|Compile|Customize|Embed
bench:
	$(GO) test -bench='$(BENCH)' -benchmem -run=^$$ .

# Headline perf record: runs the paper-scale benchmarks, the checkpointing
# pair, the batched-vs-serial embedding pair, and the Flat-vs-HNSW retrieval
# pair five times each and writes the averaged ns/op, B/op, allocs/op (plus
# custom units like recall and hops/op) to BENCH_6.json for comparison
# against earlier checked-in records. CompileUltraSwerv matches both the
# fresh and the checkpointed variant (their ratio is the checkpoint
# speedup); EmbedGlobalSerial/Batched is the batching speedup per flush;
# FlatSearch10k/HNSWSearch10k is the sublinear-retrieval speedup.
COMPARE ?= Table2DatabaseBuild|Table4Baseline|CompileUltraSwerv|CheckpointRestore|EmbedGlobalSerial|EmbedGlobalBatched
SEARCH_COMPARE ?= FlatSearch10k|HNSWSearch10k
bench-compare:
	{ $(GO) test -bench='$(COMPARE)' -benchmem -benchtime=1x -count=5 -run=^$$ . ; \
	  $(GO) test -bench='$(SEARCH_COMPARE)' -benchmem -count=5 -run=^$$ ./internal/vecindex ; } \
		| $(GO) run ./cmd/benchjson > BENCH_6.json
	@cat BENCH_6.json

# Allocation-regression gate: reruns the fast benchmarks (the paper-scale
# Table2/Table4 database builds are excluded to keep this CI-speed) and
# fails if any benchmark's allocs/op regresses more than 20% against the
# checked-in BENCH_GATE.json baseline. The baseline is recorded by
# bench-gate-baseline with the *same* benchmark subset and -count as the
# gate rerun — allocs/op is deterministic only under identical process
# conditions (which earlier benchmarks warmed the intern table and the
# scratch pools matters), so the gate must not compare against the
# full-set BENCH_6.json record. Regenerate the baseline whenever a change
# intentionally moves an allocation count.
GATE ?= CompileUltraSwerv|CheckpointRestore|EmbedGlobalSerial|EmbedGlobalBatched
GATE_BASELINE ?= BENCH_GATE.json
GATE_RUN = { $(GO) test -bench='$(GATE)' -benchmem -benchtime=1x -count=3 -run=^$$ . ; \
	  $(GO) test -bench='$(SEARCH_COMPARE)' -benchmem -count=3 -run=^$$ ./internal/vecindex ; }
bench-gate:
	$(GATE_RUN) | $(GO) run ./cmd/benchjson -baseline $(GATE_BASELINE) > /dev/null

bench-gate-baseline:
	$(GATE_RUN) | $(GO) run ./cmd/benchjson > $(GATE_BASELINE)
	@cat $(GATE_BASELINE)

# Heap-profile one benchmark (override PROFILE_BENCH/PROFILE_PKG), then
# inspect hot allocation sites with:
#   go tool pprof -top -alloc_objects mem.out
PROFILE_BENCH ?= CompileUltraSwerv$$
PROFILE_PKG ?= .
memprofile:
	$(GO) run ./cmd/benchjson -drive '$(PROFILE_BENCH)' -pkg $(PROFILE_PKG) -memprofile mem.out > /dev/null
	@echo "wrote mem.out; try: go tool pprof -top -alloc_objects mem.out"

# Continuous-batching correctness gate: the concurrent /v1/customize hammer
# must produce byte-identical responses to a batching-disabled server, and
# the batcher itself must be race-free, both under -race.
batch-race:
	$(GO) test ./internal/batch -race
	$(GO) test ./internal/server -race -run 'TestBatchedCustomizeByteIdentical|TestHealthzEchoesBatchConfig'

ci: build vet race

# Short fuzzing pass over every untrusted-input parser. Each target gets
# FUZZTIME of coverage-guided input generation on top of its checked-in
# seed corpus (testdata/fuzz/); any crash is a failure. Raise FUZZTIME for
# a deeper soak, e.g. make fuzz-smoke FUZZTIME=5m.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/verilog -run='^$$' -fuzz=FuzzParseVerilog -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/liberty -run='^$$' -fuzz=FuzzParseLiberty -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/synth -run='^$$' -fuzz=FuzzParseScript -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/graphdb -run='^$$' -fuzz=FuzzParseCypher -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/server -run='^$$' -fuzz=FuzzCustomizeRequest -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/qorlog -run='^$$' -fuzz=FuzzQoRLogRecover -fuzztime=$(FUZZTIME)

# Crash-recovery gate for the durable QoR log: fault-injected kills
# mid-append and mid-recompaction, torn/corrupt-tail truncation, the
# degrade-to-memory path, and warm-restart byte-equivalence across the
# serving stack.
crash-recovery:
	$(GO) test ./internal/qorlog -race -run \
		'TestKillDuringAppend|TestTornTailRecovery|TestCorruptRecordTruncates|TestBadHeaderResets|TestRecompactionCrashLeavesOldLogIntact|TestShortWriteRewindsAndRetries|TestStoreDegradesToMemoryOnFatalDiskError'
	$(GO) test ./internal/server -race -run 'TestWarmRestart|TestShutdownFlushesQoRLog|TestUnopenableQoRLog'
	$(GO) test . -race -run 'TestWarmRestartEquivalenceCorpus'

# Distributed-result-tier gate: an in-process chatlscached shared by two
# replica clients must dedup Pass@k synthesis fleet-wide (one tool run per
# unique key, byte-identical to a storeless single replica), and killing
# the cache server mid-run must degrade the client to local-only with one
# warning and equivalent results — all under -race.
remote-cache-e2e:
	$(GO) test ./internal/remotecache -race
	$(GO) test . -race -run 'TestTwoReplicasDedupAndMatchSingleReplica|TestReplicaDegradesWhenTierDiesMidRun'

# Chaos soak (~30s seeded profile): a real server + remote tier under
# burst load, tier kills/restarts, sticky stage outages, disk faults, and
# latency spikes, checking the overload-protection invariants (no
# deadlocks, allowed statuses only, byte-identical non-degraded replies,
# breakers re-close, limiter re-expands, no lost leases). The failure
# message echoes CHAOS_SEED; rerun with the printed seed to reproduce.
CHAOS_SEED ?= 20250808
chaos-soak:
	$(GO) run ./cmd/chaos -seed $(CHAOS_SEED)

# Everything CI runs plus the fuzz smoke pass, the crash-recovery gate,
# the distributed-result-tier gate, the continuous-batching gate, and the
# chaos soak.
check: build vet race batch-race fuzz-smoke crash-recovery remote-cache-e2e chaos-soak
