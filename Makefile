GO ?= go

.PHONY: build test short race vet ci serve bench bench-compare

build:
	$(GO) build ./...

# Full suite, including the fault-injection tests (resilience_test.go).
test:
	$(GO) test ./...

# Fast subset: skips the slow database-build experiments.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Run the serving daemon (builds the SynthRAG database first, ~a minute).
serve:
	$(GO) run ./cmd/chatlsd -addr :8080

# Micro-benchmarks: substrate and serving-path cache costs. Override BENCH
# to regenerate the paper tables instead (e.g. make bench BENCH=Table3).
BENCH ?= Elaborate|Compile|Customize|Embed
bench:
	$(GO) test -bench='$(BENCH)' -benchmem -run=^$$ .

# Headline perf record: runs the two paper-scale benchmarks five times each
# and writes the averaged ns/op, B/op, allocs/op to BENCH_3.json for
# comparison against earlier checked-in records.
COMPARE ?= Table2DatabaseBuild|Table4Baseline
bench-compare:
	$(GO) test -bench='$(COMPARE)' -benchmem -benchtime=1x -count=5 -run=^$$ . \
		| $(GO) run ./cmd/benchjson > BENCH_3.json
	@cat BENCH_3.json

ci: build vet race
