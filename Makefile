GO ?= go

.PHONY: build test short race vet ci

build:
	$(GO) build ./...

# Full suite, including the fault-injection tests (resilience_test.go).
test:
	$(GO) test ./...

# Fast subset: skips the slow database-build experiments.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

ci: build vet race
