package chatls

import (
	"context"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/qorlog"
	"repro/internal/synth"
)

// ResultStore is what the evaluation path needs from a result cache: logged
// QoR records addressed by content key. *qorlog.Store implements it (the
// local, durable tier); remotecache.Tier implements it over a local store
// plus the fleet-shared remote tier. Implementations must be safe for
// concurrent use and total — a Get that cannot be answered is a miss, a Put
// that cannot be stored is dropped, never an error into the synthesis path.
type ResultStore interface {
	Get(key qorlog.Key) (qorlog.Record, bool)
	Put(key qorlog.Key, rec qorlog.Record)
}

// LeasedResultStore extends ResultStore with fleet-wide work coordination:
// before computing key's result, a caller Acquires it. The three outcomes:
//
//   - (rec, true, release): someone already computed it — use rec, release
//     is a no-op;
//   - (zero, false, release): this caller holds the lease — compute,
//     Put the result, then call release;
//   - on any coordination failure the implementation returns (zero, false,
//     no-op): computing locally is always correct, leases only save work.
//
// release is never nil and must be called exactly once, after the result
// (if any) is published.
type LeasedResultStore interface {
	ResultStore
	Acquire(ctx context.Context, key qorlog.Key) (qorlog.Record, bool, func())
}

// ResultKey derives the durable QoR-log key of one synthesis outcome. A
// simulated synthesis run is a pure function of the library delay models,
// the RTL sources, and the script text (clock period, wireload model, and
// parameter overrides all live in the script), so those three inputs —
// library by content fingerprint, design by (file name, source), script
// verbatim — address the result. Any change to any of them changes the key,
// which is how skip-if-unchanged sweeps and warm restarts stay sound.
func ResultKey(lib *liberty.Library, d *designs.Design, script string) qorlog.Key {
	return qorlog.KeyOf(
		synth.LibraryFingerprint(lib),
		d.FileName,
		d.Source,
		script,
	)
}

// recordOf converts a synthesis QoR into the log's on-disk record. The two
// structs carry identical fields (qorlog is a leaf package and must not
// import synth); floats cross unmodified, so a logged record round-trips
// bit-identically.
func recordOf(q synth.QoR) qorlog.Record {
	return qorlog.Record{
		Design:     q.Design,
		Period:     q.Period,
		WNS:        q.WNS,
		CPS:        q.CPS,
		TNS:        q.TNS,
		Area:       q.Area,
		Leakage:    q.Leakage,
		Cells:      q.Cells,
		Seq:        q.Seq,
		Violations: q.Violations,
	}
}

// qorOf is the inverse of recordOf.
func qorOf(rec qorlog.Record) synth.QoR {
	return synth.QoR{
		Design:     rec.Design,
		Period:     rec.Period,
		WNS:        rec.WNS,
		CPS:        rec.CPS,
		TNS:        rec.TNS,
		Area:       rec.Area,
		Leakage:    rec.Leakage,
		Cells:      rec.Cells,
		Seq:        rec.Seq,
		Violations: rec.Violations,
	}
}
