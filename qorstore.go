package chatls

import (
	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/qorlog"
	"repro/internal/synth"
)

// ResultKey derives the durable QoR-log key of one synthesis outcome. A
// simulated synthesis run is a pure function of the library delay models,
// the RTL sources, and the script text (clock period, wireload model, and
// parameter overrides all live in the script), so those three inputs —
// library by content fingerprint, design by (file name, source), script
// verbatim — address the result. Any change to any of them changes the key,
// which is how skip-if-unchanged sweeps and warm restarts stay sound.
func ResultKey(lib *liberty.Library, d *designs.Design, script string) qorlog.Key {
	return qorlog.KeyOf(
		synth.LibraryFingerprint(lib),
		d.FileName,
		d.Source,
		script,
	)
}

// recordOf converts a synthesis QoR into the log's on-disk record. The two
// structs carry identical fields (qorlog is a leaf package and must not
// import synth); floats cross unmodified, so a logged record round-trips
// bit-identically.
func recordOf(q synth.QoR) qorlog.Record {
	return qorlog.Record{
		Design:     q.Design,
		Period:     q.Period,
		WNS:        q.WNS,
		CPS:        q.CPS,
		TNS:        q.TNS,
		Area:       q.Area,
		Leakage:    q.Leakage,
		Cells:      q.Cells,
		Seq:        q.Seq,
		Violations: q.Violations,
	}
}

// qorOf is the inverse of recordOf.
func qorOf(rec qorlog.Record) synth.QoR {
	return synth.QoR{
		Design:     rec.Design,
		Period:     rec.Period,
		WNS:        rec.WNS,
		CPS:        rec.CPS,
		TNS:        rec.TNS,
		Area:       rec.Area,
		Leakage:    rec.Leakage,
		Cells:      rec.Cells,
		Seq:        rec.Seq,
		Violations: rec.Violations,
	}
}
