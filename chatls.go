// Package chatls is the public facade of the ChatLS reproduction: a
// framework that customizes logic-synthesis scripts from natural-language
// requirements (DAC 2025, "ChatLS: Multimodal Retrieval-Augmented Generation
// and Chain-of-Thought for Logic Synthesis Script Customization").
//
// The framework (Fig. 1/2 of the paper) combines four components:
//
//   - CircuitMentor (internal/circuitmentor): graph-based circuit analysis —
//     RTL becomes a hierarchical graph stored in an embedded property-graph
//     database, and a metric-learned GraphSAGE model embeds its modules.
//   - SynthRAG (internal/synthrag): multimodal retrieval — graph-embedding
//     search with domain-specific reranking over an expert strategy
//     database, Cypher queries for design code and library cells, and
//     text-embedding retrieval over the tool manual.
//   - SynthExpert (internal/synthexpert): chain-of-thought refinement where
//     every reasoning step retrieves supporting information and revises the
//     drafted script (hallucinated commands, invalid options, ordering).
//   - A generator LLM (internal/llm): simulated GPT-4o / Claude 3.5
//     profiles sharing one text-driven policy, so pipeline structure — not
//     the generator — differentiates the results.
//
// The synthesis tool itself (internal/synth over internal/netlist and
// internal/sta) is a working logic-synthesis simulator, so script choices
// change QoR through mechanism rather than lookup.
package chatls

import (
	"fmt"
	"strings"

	"repro/internal/circuitmentor"
	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/synth"
	"repro/internal/synthexpert"
	"repro/internal/synthrag"
)

// DefaultRequirement is the natural-language instruction used across the
// evaluation ("identical prompt engineering" for every model, as in the
// paper).
const DefaultRequirement = "Customize the synthesis script to optimize timing: close all timing " +
	"violations at the given clock period. Basic configurations (clock period, wireload model) " +
	"must not change. Recover area where timing allows."

// Task is one customization problem: a design plus the baseline script and
// its report.
type Task struct {
	Design         *designs.Design
	Requirement    string
	Baseline       string
	BaselineReport string
	Lib            *liberty.Library
}

// NewTask runs the baseline script once and packages the customization
// problem the way the paper's flow does (user provides design, script, and
// tool reports).
func NewTask(d *designs.Design, lib *liberty.Library) (*Task, synth.QoR, error) {
	sess := synth.NewSession(lib)
	sess.AddSource(d.FileName, d.Source)
	res, err := sess.Run(d.BaselineScript())
	if err != nil {
		return nil, synth.QoR{}, fmt.Errorf("baseline %s: %v", d.Name, err)
	}
	return &Task{
		Design:         d,
		Requirement:    DefaultRequirement,
		Baseline:       d.BaselineScript(),
		BaselineReport: strings.Join(res.Reports, "\n"),
		Lib:            lib,
	}, *res.QoR, nil
}

// Pipeline generates a customized script for a task. Sample indexes the
// Pass@k attempt.
type Pipeline interface {
	Name() string
	Customize(t *Task, sample int) (string, error)
}

// RawPipeline is the baseline comparison: the generator sees the
// requirement, the baseline script, the tool report, and the raw RTL —
// exactly the single-shot prompting the paper compares against.
type RawPipeline struct {
	Model *llm.Model
}

// Name identifies the pipeline by its model profile.
func (p *RawPipeline) Name() string { return p.Model.Profile.Name }

// Customize performs one-shot prompting with the raw design text.
func (p *RawPipeline) Customize(t *Task, sample int) (string, error) {
	var b strings.Builder
	b.WriteString("## Requirement\n")
	b.WriteString(t.Requirement)
	b.WriteString("\n\n## Baseline script\n")
	b.WriteString(t.Baseline)
	b.WriteString("\n## Synthesis report\n")
	b.WriteString(t.BaselineReport)
	b.WriteString("\n## RTL\n")
	b.WriteString(t.Design.Source)
	return p.Model.Generate(llm.GenRequest{Prompt: b.String(), Sample: sample}), nil
}

// ChatLSPipeline is the full framework: CircuitMentor analysis, SynthRAG
// retrieval, generation, and SynthExpert chain-of-thought refinement.
// The Disable flags implement the paper's ablations.
type ChatLSPipeline struct {
	Model  *llm.Model
	DB     *synthrag.Database
	Expert *synthexpert.Expert
	// Rerank weights of Eq. 5.
	Alpha, Beta float64
	// Ablation switches.
	DisableMentor bool // no design-characteristics analysis
	DisableRAG    bool // no retrieved strategies
	DisableExpert bool // no CoT refinement
	// LastSteps records the CoT steps of the most recent Customize call.
	LastSteps []synthexpert.Step
}

// NewChatLS assembles the standard pipeline over a built database.
func NewChatLS(model *llm.Model, db *synthrag.Database) *ChatLSPipeline {
	return &ChatLSPipeline{
		Model:  model,
		DB:     db,
		Expert: synthexpert.New(model, db),
		Alpha:  0.7,
		Beta:   0.3,
	}
}

// Name identifies the pipeline, noting active ablations.
func (p *ChatLSPipeline) Name() string {
	name := "chatls"
	if p.DisableMentor {
		name += "-nomentor"
	}
	if p.DisableRAG {
		name += "-norag"
	}
	if p.DisableExpert {
		name += "-noexpert"
	}
	return name
}

// Customize runs the full ChatLS flow of Fig. 2 for one sample.
func (p *ChatLSPipeline) Customize(t *Task, sample int) (string, error) {
	var b strings.Builder
	b.WriteString("## Requirement\n")
	b.WriteString(t.Requirement)
	b.WriteString("\n")

	var traits []string
	if !p.DisableMentor {
		analysis, err := circuitmentor.Analyze(t.Design.Source, t.Design.Top, t.Design.Period, t.Lib)
		if err != nil {
			return "", fmt.Errorf("circuitmentor: %v", err)
		}
		traits = analysis.Traits
		b.WriteString("\n## Design characteristics\n")
		b.WriteString(analysis.Render())
	}

	if !p.DisableRAG {
		emb, _, err := p.DB.EmbedDesign(t.Design.Source, t.Design.Top)
		if err != nil {
			return "", fmt.Errorf("embedding: %v", err)
		}
		hits := p.DB.RetrieveStrategiesFor(emb, traits, 2, p.Alpha, p.Beta, 0.25)
		b.WriteString("\n## Retrieved strategies\n")
		b.WriteString(synthrag.RenderStrategies(hits))
	}

	b.WriteString("\n## Baseline script\n")
	b.WriteString(t.Baseline)
	b.WriteString("\n## Synthesis report\n")
	b.WriteString(t.BaselineReport)

	draft := p.Model.Generate(llm.GenRequest{Prompt: b.String(), Sample: sample})
	if p.DisableExpert {
		p.LastSteps = nil
		return draft, nil
	}
	refined, steps := p.Expert.Refine(draft, t.Baseline)
	p.LastSteps = steps
	return refined, nil
}
