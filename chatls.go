// Package chatls is the public facade of the ChatLS reproduction: a
// framework that customizes logic-synthesis scripts from natural-language
// requirements (DAC 2025, "ChatLS: Multimodal Retrieval-Augmented Generation
// and Chain-of-Thought for Logic Synthesis Script Customization").
//
// The framework (Fig. 1/2 of the paper) combines four components:
//
//   - CircuitMentor (internal/circuitmentor): graph-based circuit analysis —
//     RTL becomes a hierarchical graph stored in an embedded property-graph
//     database, and a metric-learned GraphSAGE model embeds its modules.
//   - SynthRAG (internal/synthrag): multimodal retrieval — graph-embedding
//     search with domain-specific reranking over an expert strategy
//     database, Cypher queries for design code and library cells, and
//     text-embedding retrieval over the tool manual.
//   - SynthExpert (internal/synthexpert): chain-of-thought refinement where
//     every reasoning step retrieves supporting information and revises the
//     drafted script (hallucinated commands, invalid options, ordering).
//   - A generator LLM (internal/llm): simulated GPT-4o / Claude 3.5
//     profiles sharing one text-driven policy, so pipeline structure — not
//     the generator — differentiates the results.
//
// The synthesis tool itself (internal/synth over internal/netlist and
// internal/sta) is a working logic-synthesis simulator, so script choices
// change QoR through mechanism rather than lookup.
package chatls

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/circuitmentor"
	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/overload"
	"repro/internal/resilience"
	"repro/internal/synth"
	"repro/internal/synthexpert"
	"repro/internal/synthrag"
)

// DefaultRequirement is the natural-language instruction used across the
// evaluation ("identical prompt engineering" for every model, as in the
// paper).
const DefaultRequirement = "Customize the synthesis script to optimize timing: close all timing " +
	"violations at the given clock period. Basic configurations (clock period, wireload model) " +
	"must not change. Recover area where timing allows."

// Task is one customization problem: a design plus the baseline script and
// its report.
type Task struct {
	Design         *designs.Design
	Requirement    string
	Baseline       string
	BaselineReport string
	Lib            *liberty.Library
}

// NewTask runs the baseline script once and packages the customization
// problem the way the paper's flow does (user provides design, script, and
// tool reports). The context bounds the baseline synthesis run.
func NewTask(ctx context.Context, d *designs.Design, lib *liberty.Library) (*Task, synth.QoR, error) {
	return NewTaskWith(ctx, d, lib, nil)
}

// NewTaskWith is NewTask with an optional shared elaboration-checkpoint
// store: the baseline synthesis restores the design's post-link state from
// the store when a prior run elaborated the same sources, and captures it
// for later runs otherwise. Results are bit-identical with or without the
// store (nil disables checkpointing).
func NewTaskWith(ctx context.Context, d *designs.Design, lib *liberty.Library, ckpt *synth.CheckpointStore) (*Task, synth.QoR, error) {
	sess := synth.NewSession(lib)
	sess.Checkpoints = ckpt
	sess.AddSource(d.FileName, d.Source)
	res, err := sess.RunContext(ctx, d.BaselineScript())
	if err != nil {
		return nil, synth.QoR{}, fmt.Errorf("baseline %s: %w", d.Name, err)
	}
	return &Task{
		Design:         d,
		Requirement:    DefaultRequirement,
		Baseline:       d.BaselineScript(),
		BaselineReport: strings.Join(res.Reports, "\n"),
		Lib:            lib,
	}, *res.QoR, nil
}

// Pipeline generates a customized script for a task. Sample indexes the
// Pass@k attempt. The context bounds the whole generation flow; a cancelled
// or expired context aborts with a resilience.ErrCancelled/ErrTimeout error.
type Pipeline interface {
	Name() string
	Customize(ctx context.Context, t *Task, sample int) (string, error)
}

// Customization is the full result of one pipeline call: the script plus the
// per-call reporting that used to live as mutable state on the pipeline
// struct. Returning it makes a pipeline instance safe to share across
// goroutines (the serving path and parallel Pass@k need exactly that).
type Customization struct {
	Script string
	// Steps are SynthExpert's chain-of-thought steps (nil for pipelines
	// without CoT refinement, or when refinement was skipped or degraded).
	Steps []synthexpert.Step
	// Degradation reports which components fell back during this call; never
	// nil for ChatLSPipeline (empty report = full strength), nil for
	// pipelines that do not degrade.
	Degradation *resilience.DegradationReport
}

// ResultPipeline is a Pipeline whose per-call results are returned rather
// than stored on the struct. Implementations must be safe for concurrent
// CustomizeResult calls; the evaluation harness and the server prefer this
// interface when available.
type ResultPipeline interface {
	Pipeline
	CustomizeResult(ctx context.Context, t *Task, sample int) (Customization, error)
}

// RawPipeline is the baseline comparison: the generator sees the
// requirement, the baseline script, the tool report, and the raw RTL —
// exactly the single-shot prompting the paper compares against.
type RawPipeline struct {
	Model *llm.Model
}

// Name identifies the pipeline by its model profile.
func (p *RawPipeline) Name() string { return p.Model.Profile.Name }

// CustomizeResult performs one-shot prompting with the raw design text.
// RawPipeline is stateless, so concurrent calls are safe.
func (p *RawPipeline) CustomizeResult(ctx context.Context, t *Task, sample int) (Customization, error) {
	script, err := p.Customize(ctx, t, sample)
	return Customization{Script: script}, err
}

// Customize performs one-shot prompting with the raw design text.
func (p *RawPipeline) Customize(ctx context.Context, t *Task, sample int) (string, error) {
	var b strings.Builder
	b.WriteString("## Requirement\n")
	b.WriteString(t.Requirement)
	b.WriteString("\n\n## Baseline script\n")
	b.WriteString(t.Baseline)
	b.WriteString("\n## Synthesis report\n")
	b.WriteString(t.BaselineReport)
	b.WriteString("\n## RTL\n")
	b.WriteString(t.Design.Source)
	script, err := p.Model.GenerateContext(ctx, llm.GenRequest{Prompt: b.String(), Sample: sample})
	if err != nil {
		return "", resilience.ContextError(resilience.CompGenerate, err)
	}
	return script, nil
}

// ChatLSPipeline is the full framework: CircuitMentor analysis, SynthRAG
// retrieval, generation, and SynthExpert chain-of-thought refinement.
// The Disable flags implement the paper's ablations.
type ChatLSPipeline struct {
	Model  *llm.Model
	DB     *synthrag.Database
	Expert *synthexpert.Expert
	// Rerank weights of Eq. 5.
	Alpha, Beta float64
	// Ablation switches.
	DisableMentor bool // no design-characteristics analysis
	DisableRAG    bool // no retrieved strategies
	DisableExpert bool // no CoT refinement
	// LastSteps records the CoT steps of the most recent Customize call.
	//
	// Deprecated: per-call state on a shared struct is unsafe for concurrent
	// use; call CustomizeResult and read Customization.Steps instead.
	// Only Customize updates this field.
	LastSteps []synthexpert.Step
	// Retry governs how component failures are retried before the pipeline
	// degrades. Zero value means no retries (single attempt).
	Retry resilience.RetryPolicy
	// Inject, when set, is the fault-injection layer consulted before every
	// component call (tests only).
	Inject *resilience.Injector
	// Breakers, when set, maps component names to shared circuit breakers
	// consulted before each guarded stage: an open breaker skips the stage
	// immediately (degrading, like a failed stage) instead of burning
	// retries on a component that has been failing. The server installs one
	// per auxiliary stage; absent entries (and a nil map) mean no breaker.
	Breakers map[string]*resilience.Breaker
	// Costs, when set, is the shared per-stage EWMA cost model: successful
	// stage durations feed it, and optional stages are skipped up front
	// when the remaining context deadline cannot cover their expected cost
	// plus the mandatory generation that follows (recorded as a
	// degradation). Nil disables budget awareness.
	Costs *overload.CostModel
	// LastReport records which components degraded during the most recent
	// Customize call; nil before the first call.
	//
	// Deprecated: per-call state on a shared struct is unsafe for concurrent
	// use; call CustomizeResult and read Customization.Degradation instead.
	// Only Customize updates this field.
	LastReport *resilience.DegradationReport
}

// NewChatLS assembles the standard pipeline over a built database.
func NewChatLS(model *llm.Model, db *synthrag.Database) *ChatLSPipeline {
	return &ChatLSPipeline{
		Model:  model,
		DB:     db,
		Expert: synthexpert.New(model, db),
		Alpha:  0.7,
		Beta:   0.3,
		Retry:  resilience.DefaultRetryPolicy(model.Seed),
	}
}

// Name identifies the pipeline, noting active ablations.
func (p *ChatLSPipeline) Name() string {
	name := "chatls"
	if p.DisableMentor {
		name += "-nomentor"
	}
	if p.DisableRAG {
		name += "-norag"
	}
	if p.DisableExpert {
		name += "-noexpert"
	}
	return name
}

// guard executes one component call under the pipeline's retry policy,
// panic-recovery boundary, (in tests) fault injector, and the component's
// circuit breaker when one is installed: an open breaker rejects without
// attempting the call, successes/failures feed the breaker, and a pure
// caller-side cancellation is a no-verdict (the component's health was
// never tested).
func (p *ChatLSPipeline) guard(ctx context.Context, component string, fn func(context.Context) error) error {
	br := p.Breakers[component]
	if !br.Allow() {
		return resilience.BreakerError(component)
	}
	start := time.Now()
	err := resilience.Execute(ctx, resilience.Op{
		Component: component,
		Policy:    p.Retry,
		Injector:  p.Inject,
	}, fn)
	switch {
	case err == nil:
		br.Success()
		p.Costs.Observe(component, time.Since(start))
	case errors.Is(err, resilience.ErrCancelled):
		br.Drop()
	default:
		// Timeouts count against the breaker: a stage that blows the
		// deadline is as sick as one that errors.
		br.Failure()
	}
	return err
}

// overBudget rejects a stage group when the remaining deadline cannot
// cover its expected cost plus the mandatory generation still ahead.
// Unknown costs (cold model, nil model) admit.
func (p *ChatLSPipeline) overBudget(ctx context.Context, lead string, components ...string) error {
	need := p.Costs.Expect(resilience.CompGenerate)
	for _, c := range components {
		need += p.Costs.Expect(c)
	}
	return overload.CheckBudget(ctx, lead, need)
}

// Degradation reports which components degraded during the most recent
// Customize call; nil before the first call, empty report when none did.
//
// Deprecated: like LastReport this reads per-call state off the shared
// struct; use CustomizeResult's Customization.Degradation instead.
func (p *ChatLSPipeline) Degradation() *resilience.DegradationReport { return p.LastReport }

func hasErrors(issues []synth.Issue) bool {
	for _, i := range issues {
		if i.Severity == "error" {
			return true
		}
	}
	return false
}

// Customize runs the full ChatLS flow of Fig. 2 for one sample. It is a
// thin wrapper over CustomizeResult that additionally stores the per-call
// results in the deprecated LastSteps/LastReport fields, so existing call
// sites keep working. Concurrent callers must use CustomizeResult instead.
func (p *ChatLSPipeline) Customize(ctx context.Context, t *Task, sample int) (string, error) {
	res, err := p.CustomizeResult(ctx, t, sample)
	p.LastSteps = res.Steps
	p.LastReport = res.Degradation
	return res.Script, err
}

// CustomizeResult runs the full ChatLS flow of Fig. 2 for one sample,
// returning the script together with the CoT steps and the degradation
// report for this call.
//
// The flow is fault-tolerant: each auxiliary component (CircuitMentor,
// SynthRAG embedding and retrieval, SynthExpert) runs under retry with
// backoff and a panic-recovery boundary; if it still fails, the pipeline
// degrades to the next-weaker configuration — proceeding without that
// component's contribution — and records the event in the returned
// Customization.Degradation. Only a generator failure or a context
// cancellation/timeout aborts with an error, so a degraded call always
// yields a runnable script (a wasted attempt in the Pass@k sense, never a
// crash).
//
// CustomizeResult mutates no pipeline state: a single instance over a built
// database is safe for concurrent calls (the database, model, and expert
// are all read-only at serving time).
func (p *ChatLSPipeline) CustomizeResult(ctx context.Context, t *Task, sample int) (Customization, error) {
	report := &resilience.DegradationReport{}
	out := Customization{Degradation: report}

	var b strings.Builder
	b.WriteString("## Requirement\n")
	b.WriteString(t.Requirement)
	b.WriteString("\n")

	var traits []string
	if !p.DisableMentor {
		if berr := p.overBudget(ctx, resilience.CompMentor, resilience.CompMentor); berr != nil {
			report.Record(resilience.CompMentor, "skipped: insufficient deadline budget", berr)
		} else {
			var analysis *circuitmentor.Analysis
			err := p.guard(ctx, resilience.CompMentor, func(ctx context.Context) error {
				var err error
				analysis, err = circuitmentor.AnalyzeContext(ctx, t.Design.Source, t.Design.Top, t.Design.Period, t.Lib)
				return err
			})
			switch {
			case err == nil:
				traits = analysis.Traits
				b.WriteString("\n## Design characteristics\n")
				b.WriteString(analysis.Render())
			case resilience.IsFatal(err):
				return out, err
			default:
				report.Record(resilience.CompMentor, "proceed without design characteristics", err)
			}
		}
	}

	if !p.DisableRAG {
		if berr := p.overBudget(ctx, resilience.CompRAGEmbed, resilience.CompRAGEmbed, resilience.CompRAGRetrieve); berr != nil {
			report.Record(resilience.CompRAGEmbed, "skipped: insufficient deadline budget", berr)
		} else {
			var emb []float64
			err := p.guard(ctx, resilience.CompRAGEmbed, func(ctx context.Context) error {
				var err error
				emb, _, err = p.DB.EmbedDesignContext(ctx, t.Design.Source, t.Design.Top)
				return err
			})
			if err == nil {
				var hits []synthrag.StrategyHit
				err = p.guard(ctx, resilience.CompRAGRetrieve, func(ctx context.Context) error {
					var err error
					hits, err = p.DB.RetrieveStrategiesForContext(ctx, emb, traits, 2, p.Alpha, p.Beta, 0.25)
					return err
				})
				switch {
				case err == nil:
					b.WriteString("\n## Retrieved strategies\n")
					b.WriteString(synthrag.RenderStrategies(hits))
				case resilience.IsFatal(err):
					return out, err
				default:
					report.Record(resilience.CompRAGRetrieve, "proceed without retrieved strategies", err)
				}
			} else if resilience.IsFatal(err) {
				return out, err
			} else {
				report.Record(resilience.CompRAGEmbed, "proceed without retrieved strategies", err)
			}
		}
	}

	b.WriteString("\n## Baseline script\n")
	b.WriteString(t.Baseline)
	b.WriteString("\n## Synthesis report\n")
	b.WriteString(t.BaselineReport)

	// Generation has no weaker fallback, so a budget that cannot cover it
	// aborts the sample before any generator work happens.
	if berr := overload.CheckBudget(ctx, resilience.CompGenerate, p.Costs.Expect(resilience.CompGenerate)); berr != nil {
		return out, berr
	}
	var draft string
	err := p.guard(ctx, resilience.CompGenerate, func(ctx context.Context) error {
		var err error
		draft, err = p.Model.GenerateContext(ctx, llm.GenRequest{Prompt: b.String(), Sample: sample})
		return err
	})
	if err != nil {
		// The generator is the one component with no weaker fallback: without
		// a draft there is nothing to refine or emit.
		return out, err
	}

	if p.DisableExpert {
		out.Script = draft
		return out, nil
	}

	var refined string
	var steps []synthexpert.Step
	err = overload.CheckBudget(ctx, resilience.CompExpert, p.Costs.Expect(resilience.CompExpert))
	if err != nil {
		// Refinement is optional: fall through to the same draft/baseline
		// fallback a failed expert takes.
	} else {
		err = p.guard(ctx, resilience.CompExpert, func(ctx context.Context) error {
			var err error
			refined, steps, err = p.Expert.RefineContext(ctx, draft, t.Baseline)
			return err
		})
	}
	switch {
	case err == nil:
		out.Script = refined
		out.Steps = steps
		return out, nil
	case resilience.IsFatal(err):
		return out, err
	}
	if !hasErrors(synth.ValidateScript(draft)) {
		report.Record(resilience.CompExpert, "emit unrefined draft", err)
		out.Script = draft
		return out, nil
	}
	report.Record(resilience.CompExpert, "draft invalid without refinement; return baseline script", err)
	out.Script = t.Baseline
	return out, nil
}
