//go:build !race

package chatls

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

// TestInternedReparseAllocGuard pins the parse+elaborate front end's
// steady-state allocation count on the largest CPU benchmark. The first
// compile of a design populates the process-wide intern table (net, cell,
// and port-bit names) and sizes the parser's AST arenas; repeat compiles of
// the same corpus — the Pass@k serving pattern — must stay under the budget
// below, which is ~25% above the measured steady state. A regression here
// usually means a hot path went back to fmt.Sprintf/string concatenation or
// to per-node allocation. Part of the perf contract (DESIGN.md "Memory and
// GC discipline"); skipped under -race, which changes allocation counts.
func TestInternedReparseAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-compile measurement")
	}
	d := designs.SweRV()
	lib := liberty.Nangate45()
	compile := func() {
		f, err := verilog.Parse(d.Source)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := netlist.Elaborate(f, d.Top, nil, lib); err != nil {
			t.Fatal(err)
		}
	}
	compile() // warm the intern table
	allocs := testing.AllocsPerRun(5, compile)
	t.Logf("interned re-parse: %v allocs/op", allocs)
	const budget = 21000 // measured ~16.6k steady-state
	if allocs > budget {
		t.Errorf("interned re-parse allocs/op = %v, budget %d", allocs, budget)
	}
}
