package chatls

// The fault-injection suite: every injected fault — fail, panic, or hang —
// at every guarded component boundary must yield either a usable script
// (with the degradation recorded) or a typed taxonomy error. Never an
// uncaught panic, never an unbounded hang.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/designs"
	"repro/internal/llm"
	"repro/internal/resilience"
	"repro/internal/synth"
	"repro/internal/synthrag"
)

var testDBLite *synthrag.Database

// liteDB builds a fast SkipSynth database (no expert-draft synthesis) —
// enough for the pipeline to run end-to-end.
func liteDB(t *testing.T) *synthrag.Database {
	t.Helper()
	if testDBLite == nil {
		db, err := synthrag.Build(synthrag.BuildConfig{Seed: 2, SkipSynth: true, Lib: testLib})
		if err != nil {
			t.Fatal(err)
		}
		testDBLite = db
	}
	return testDBLite
}

func faultTask(t *testing.T) *Task {
	t.Helper()
	task, _, err := NewTask(context.Background(), designs.RiscV32i(), testLib)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

// TestFaultInjectionMatrix drives every (component, mode) combination
// through a full Customize call. Auxiliary components must degrade
// gracefully to a runnable script; the generator must fail with a typed
// error; a hang must be bounded by the context deadline.
func TestFaultInjectionMatrix(t *testing.T) {
	db := liteDB(t)
	task := faultTask(t)
	components := []string{
		resilience.CompMentor,
		resilience.CompRAGEmbed,
		resilience.CompRAGRetrieve,
		resilience.CompGenerate,
		resilience.CompExpert,
	}
	modes := []resilience.Mode{resilience.ModeFail, resilience.ModePanic, resilience.ModeHang}

	for _, comp := range components {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", comp, mode), func(t *testing.T) {
				p := NewChatLS(llm.New(llm.GPT4o, 2), db)
				p.Retry.BaseDelay = 0 // no real sleeping in tests
				p.Inject = resilience.NewInjector(resilience.Fault{Component: comp, Mode: mode})

				ctx := context.Background()
				var cancel context.CancelFunc
				if mode == resilience.ModeHang {
					ctx, cancel = context.WithTimeout(ctx, 300*time.Millisecond)
					defer cancel()
				}

				script, err := p.Customize(ctx, task, 0)

				if mode == resilience.ModeHang {
					// A hang is bounded by the deadline and surfaces as a
					// fatal timeout, never an indefinite block.
					if !errors.Is(err, resilience.ErrTimeout) {
						t.Fatalf("hang in %s: err = %v, want ErrTimeout", comp, err)
					}
					return
				}

				if comp == resilience.CompGenerate {
					// No weaker configuration exists without a draft: the
					// failure must be typed, not a crash.
					want := resilience.ErrRetryExhausted
					if mode == resilience.ModePanic {
						// Panics are retried; exhaustion still wraps the
						// recovered panic, so both sentinels must match.
						if !errors.Is(err, resilience.ErrComponentPanic) {
							t.Fatalf("generator panic: err = %v, want ErrComponentPanic", err)
						}
					}
					if !errors.Is(err, want) {
						t.Fatalf("generator %s: err = %v, want %v", mode, err, want)
					}
					return
				}

				// Auxiliary component: the pipeline degrades and still
				// delivers a script that runs in the tool.
				if err != nil {
					t.Fatalf("%s %s should degrade, got error: %v", comp, mode, err)
				}
				rep := p.Degradation()
				if !rep.Degraded() {
					t.Fatalf("%s %s: no degradation recorded", comp, mode)
				}
				if rep.Of(comp) == nil {
					t.Fatalf("%s %s: degradation recorded for %v, not the faulted component", comp, mode, rep.Components())
				}
				sess := synth.NewSession(testLib)
				sess.AddSource(task.Design.FileName, task.Design.Source)
				if _, err := sess.Run(script); err != nil {
					t.Fatalf("%s %s: degraded script failed in tool: %v\n%s", comp, mode, err, script)
				}
			})
		}
	}
}

// TestFaultInjectionRetryRecovers: a fault on only the first call is healed
// by the retry policy — full-strength result, no degradation.
func TestFaultInjectionRetryRecovers(t *testing.T) {
	db := liteDB(t)
	task := faultTask(t)
	p := NewChatLS(llm.New(llm.GPT4o, 2), db)
	p.Retry.BaseDelay = 0
	inj := resilience.NewInjector(resilience.Fault{
		Component: resilience.CompMentor,
		Mode:      resilience.ModeFail,
		Calls:     []int{1},
	})
	p.Inject = inj

	script, err := p.Customize(context.Background(), task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if script == "" {
		t.Fatal("empty script")
	}
	if got := inj.Calls(resilience.CompMentor); got != 2 {
		t.Errorf("mentor boundary crossed %d times, want 2 (fail then retry)", got)
	}
	if p.Degradation().Degraded() {
		t.Errorf("retry should recover without degrading: %v", p.Degradation())
	}
}

// TestCustomizeCancelledContext: a pre-cancelled context aborts with the
// typed cancellation error before any work happens.
func TestCustomizeCancelledContext(t *testing.T) {
	db := liteDB(t)
	task := faultTask(t)
	p := NewChatLS(llm.New(llm.GPT4o, 2), db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Customize(ctx, task, 0)
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// TestTable4PartialResults: one unparsable design must not take down the
// sweep — the remaining designs report, and the failure is itemized.
func TestTable4PartialResults(t *testing.T) {
	broken := &designs.Design{
		Name:     "brokenD",
		Top:      "missing_top",
		FileName: "broken.v",
		Source:   "module something(); endmodule\n",
		Period:   1.0,
	}
	cfg := ExperimentConfig{
		Lib:     testLib,
		Designs: []*designs.Design{designs.RiscV32i(), broken, designs.SweRV()},
	}
	rows, err := Table4(context.Background(), cfg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (the healthy designs)", len(rows))
	}
	var sweep SweepErrors
	if !errors.As(err, &sweep) {
		t.Fatalf("err = %v, want SweepErrors", err)
	}
	if len(sweep) != 1 || sweep[0].Design != "brokenD" {
		t.Fatalf("sweep errors = %v, want exactly brokenD", sweep)
	}
}

// TestTable4FatalAborts: a cancelled context is not a per-design failure —
// the sweep stops and reports the fatal error.
func TestTable4FatalAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := Table4(ctx, ExperimentConfig{Lib: testLib})
	if len(rows) != 0 {
		t.Errorf("rows = %d, want 0", len(rows))
	}
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// TestConfigSeedDefaults: a zero-value config picks up the paper's protocol
// seed instead of seeding everything with 0.
func TestConfigSeedDefaults(t *testing.T) {
	cfg := ExperimentConfig{Lib: testLib}
	cfg.fill()
	if cfg.Seed != ProtocolSeed {
		t.Errorf("Seed = %d, want %d", cfg.Seed, ProtocolSeed)
	}
	if DefaultConfig().Seed != ProtocolSeed {
		t.Errorf("DefaultConfig seed = %d", DefaultConfig().Seed)
	}
}

// TestRunPassKRecordsDegradation: the evaluation propagates the pipeline's
// degradation report into the per-sample outcome.
func TestRunPassKRecordsDegradation(t *testing.T) {
	db := liteDB(t)
	p := NewChatLS(llm.New(llm.GPT4o, 2), db)
	p.Retry.BaseDelay = 0
	p.Inject = resilience.NewInjector(resilience.Fault{
		Component: resilience.CompMentor,
		Mode:      resilience.ModeFail,
	})
	res, err := RunPassK(context.Background(), p, designs.RiscV32i(), 2, testLib)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 2 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	for i, s := range res.Samples {
		found := false
		for _, c := range s.Degraded {
			if c == resilience.CompMentor {
				found = true
			}
		}
		if !found {
			t.Errorf("sample %d: degradation not recorded: %v", i, s.Degraded)
		}
	}
}
