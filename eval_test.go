package chatls

import (
	"context"
	"testing"

	"repro/internal/designs"
)

// brokenPipeline always emits a script that dies in the tool.
type brokenPipeline struct{}

func (brokenPipeline) Name() string { return "broken" }
func (brokenPipeline) Customize(ctx context.Context, t *Task, sample int) (string, error) {
	return "optimize_timing -aggressive\n", nil
}

// TestRunPassKFallsBackToBaseline: when every sample fails, the evaluation
// reports the baseline QoR (a wasted customization attempt, not a
// destroyed design).
func TestRunPassKFallsBackToBaseline(t *testing.T) {
	res, err := RunPassK(context.Background(), brokenPipeline{}, designs.RiscV32i(), 3, testLib)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid != 0 || res.BestSample != -1 {
		t.Errorf("broken pipeline should produce no valid samples: %+v", res)
	}
	if res.Best != res.Baseline {
		t.Error("best must fall back to baseline")
	}
	if res.Improved() {
		t.Error("fallback must not count as improvement")
	}
	for _, s := range res.Samples {
		if s.Err == "" {
			t.Error("every sample should carry an error")
		}
	}
}
