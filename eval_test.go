package chatls

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/designs"
	"repro/internal/llm"
)

// brokenPipeline always emits a script that dies in the tool.
type brokenPipeline struct{}

func (brokenPipeline) Name() string { return "broken" }
func (brokenPipeline) Customize(ctx context.Context, t *Task, sample int) (string, error) {
	return "optimize_timing -aggressive\n", nil
}

// TestRunPassKFallsBackToBaseline: when every sample fails, the evaluation
// reports the baseline QoR (a wasted customization attempt, not a
// destroyed design).
func TestRunPassKFallsBackToBaseline(t *testing.T) {
	res, err := RunPassK(context.Background(), brokenPipeline{}, designs.RiscV32i(), 3, testLib)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid != 0 || res.BestSample != -1 {
		t.Errorf("broken pipeline should produce no valid samples: %+v", res)
	}
	if res.Best != res.Baseline {
		t.Error("best must fall back to baseline")
	}
	if res.Improved() {
		t.Error("fallback must not count as improvement")
	}
	for _, s := range res.Samples {
		if s.Err == "" {
			t.Error("every sample should carry an error")
		}
	}
}

// TestRunPassKParallelMatchesSerial: parallel evaluation must reproduce the
// serial protocol exactly — every sample, the best QoR, and the winning
// index — because samples are seeded by index, not by schedule.
func TestRunPassKParallelMatchesSerial(t *testing.T) {
	d := designs.RiscV32i()
	p := &RawPipeline{Model: llm.New(llm.GPT4o, 20250706)}
	serial, err := RunPassK(context.Background(), p, d, 5, testLib)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunPassKParallel(context.Background(), p, d, 5, testLib, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel result diverged from serial:\nserial:   %+v\nparallel: %+v", serial, par)
	}
}

// TestCustomizeResultConcurrent: one pipeline instance must tolerate
// concurrent CustomizeResult calls (the serving path shares nothing but the
// immutable model/database). Meaningful under -race.
func TestCustomizeResultConcurrent(t *testing.T) {
	task, _, err := NewTask(context.Background(), designs.RiscV32i(), testLib)
	if err != nil {
		t.Fatal(err)
	}
	p := &RawPipeline{Model: llm.New(llm.GPT4o, 7)}
	want, err := p.CustomizeResult(context.Background(), task, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := p.CustomizeResult(context.Background(), task, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if got.Script != want.Script {
				t.Error("concurrent CustomizeResult diverged for identical inputs")
			}
		}()
	}
	wg.Wait()
}
