package chatls

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/designs"
	"repro/internal/qorlog"
	"repro/internal/synthrag"
)

// TestTable4SkipIfUnchanged: the baseline sweep over unchanged inputs is
// served entirely from the durable log — identical rows, zero new appends —
// and matches the storeless sweep exactly.
func TestTable4SkipIfUnchanged(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "qor.log")
	base := ExperimentConfig{Lib: testLib, Designs: designs.Benchmarks()[:3]}

	ref, err := Table4(ctx, base)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := qorlog.OpenStore(path, 0, qorlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Results = cold
	rows, err := Table4(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, rows) {
		t.Fatal("store-backed sweep differs from the storeless one")
	}
	if cold.Stats().Appends == 0 {
		t.Fatal("cold sweep must log its outcomes")
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	// The repeat sweep in a "restarted process": every design served from
	// the log, nothing re-synthesized, nothing re-appended.
	warm, err := qorlog.OpenStore(path, 0, qorlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	cfg.Results = warm
	again, err := Table4(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, again) {
		t.Fatal("skip-if-unchanged sweep differs from the computed one")
	}
	st := warm.Stats()
	if st.Hits < int64(len(base.Designs)) || st.Appends != 0 {
		t.Fatalf("stats = %+v, want every design a hit and no new appends", st)
	}
}

// TestIterativeClosureStoreEquivalence: the resynthesis loop — early cutoff
// plus log-served non-improving rounds — produces rows deeply equal to the
// storeless loop, cold and warm.
func TestIterativeClosureStoreEquivalence(t *testing.T) {
	ctx := context.Background()
	db, err := synthrag.Build(synthrag.BuildConfig{Seed: 2, SkipSynth: true, Lib: testLib})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 3
	base := ExperimentConfig{Lib: testLib, Designs: []*designs.Design{designs.EthMAC(), designs.JPEG()}}

	ref, err := IterativeClosure(ctx, base, db, iters)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(base.Designs) * (iters + 1); len(ref) != want {
		t.Fatalf("got %d rows, want %d (early cutoff must still fill every iteration)", len(ref), want)
	}

	path := filepath.Join(t.TempDir(), "qor.log")
	cold, err := qorlog.OpenStore(path, 0, qorlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Results = cold
	rows, err := IterativeClosure(ctx, cfg, db, iters)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, rows) {
		t.Fatal("store-backed closure loop differs from the storeless one")
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := qorlog.OpenStore(path, 0, qorlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	cfg.Results = warm
	again, err := IterativeClosure(ctx, cfg, db, iters)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, again) {
		t.Fatal("warm closure loop differs from the computed one")
	}
}
