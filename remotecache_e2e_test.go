package chatls

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/designs"
	"repro/internal/llm"
	"repro/internal/qorlog"
	"repro/internal/remotecache"
	"repro/internal/synth"
)

// newReplica assembles one simulated chatlsd replica: a remote-cache client
// pointed at the tier, a two-level result store over a fresh local memory
// store, and a checkpoint store sharing elaboration state through the tier.
func newReplica(t *testing.T, baseURL, owner string, warnf func(string, ...any)) (*remotecache.Client, *remotecache.Tier, *synth.CheckpointStore) {
	t.Helper()
	client := remotecache.NewClient(remotecache.ClientConfig{
		BaseURL: baseURL,
		Owner:   owner,
		Warnf:   warnf,
	})
	tier := remotecache.NewTier(qorlog.NewMemoryStore(0), client)
	t.Cleanup(tier.Close)
	ckpt := synth.NewCheckpointStore(0)
	ckpt.SetRemote(client)
	return client, tier, ckpt
}

// scrapeCounter reads one counter/gauge value off the tier's /metrics page.
func scrapeCounter(t *testing.T, baseURL, name string) int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, fields[1])
			}
			return int64(v)
		}
	}
	t.Fatalf("metric %s not found on /metrics", name)
	return 0
}

// TestTwoReplicasDedupAndMatchSingleReplica is the distributed tier's
// headline guarantee, end to end: two replicas sharing one chatlscached
// evaluate the same Pass@k workload concurrently, produce results
// byte-identical to a storeless single-replica run, and between them run
// the synthesis tool exactly once per unique (library, sources, script) —
// every published record on the tier corresponds to one fleet-wide
// synthesis, so the server-side put counter is the dedup ledger.
func TestTwoReplicasDedupAndMatchSingleReplica(t *testing.T) {
	const seed, k = 20250706, 5
	d := designs.RiscV32i()

	// The reference: one storeless, checkpointless, serial replica.
	want, err := RunPassKOpts(context.Background(), &RawPipeline{Model: llm.New(llm.GPT4o, seed)},
		d, k, testLib, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}

	blobs, err := remotecache.OpenBlobStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := remotecache.NewServer(remotecache.ServerConfig{
		QoR:   qorlog.NewMemoryStore(0),
		Blobs: blobs,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	warn := func(format string, args ...any) { t.Errorf("unexpected degradation: "+format, args...) }
	clientA, tierA, ckptA := newReplica(t, ts.URL, "replica-a", warn)
	clientB, tierB, ckptB := newReplica(t, ts.URL, "replica-b", warn)

	var wg sync.WaitGroup
	var gotA, gotB EvalResult
	var errA, errB error
	wg.Add(2)
	go func() {
		defer wg.Done()
		gotA, errA = RunPassKOpts(context.Background(), &RawPipeline{Model: llm.New(llm.GPT4o, seed)},
			d, k, testLib, EvalOptions{Workers: 2, Checkpoints: ckptA, Results: tierA})
	}()
	go func() {
		defer wg.Done()
		gotB, errB = RunPassKOpts(context.Background(), &RawPipeline{Model: llm.New(llm.GPT4o, seed)},
			d, k, testLib, EvalOptions{Workers: 2, Checkpoints: ckptB, Results: tierB})
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("replica runs failed: A=%v B=%v", errA, errB)
	}
	tierA.Flush()
	tierB.Flush()

	if !reflect.DeepEqual(gotA, want) {
		t.Errorf("replica A diverged from the storeless run:\nwant: %+v\ngot:  %+v", want, gotA)
	}
	if !reflect.DeepEqual(gotB, want) {
		t.Errorf("replica B diverged from the storeless run:\nwant: %+v\ngot:  %+v", want, gotB)
	}

	// Fleet-wide synthesis count == unique-key count. Only samples whose
	// script survived the tool publish a record, and leases guarantee each
	// unique script was synthesized by exactly one replica, so the tier's
	// put counter must equal the number of distinct valid scripts.
	uniq := map[string]bool{}
	for _, s := range want.Samples {
		if s.QoR != nil {
			uniq[s.Script] = true
		}
	}
	if len(uniq) == 0 {
		t.Fatal("test needs at least one valid sample to measure dedup")
	}
	puts := scrapeCounter(t, ts.URL, "remotecache_qor_puts_total")
	if puts != int64(len(uniq)) {
		t.Errorf("fleet-wide synthesis count = %d puts, want %d (one per unique valid script)", puts, len(uniq))
	}
	if recs := scrapeCounter(t, ts.URL, "remotecache_qor_records"); recs != int64(len(uniq)) {
		t.Errorf("tier holds %d records, want %d", recs, len(uniq))
	}

	stA, stB := clientA.Stats(), clientB.Stats()
	if stA.Degraded || stB.Degraded {
		t.Error("no replica should have degraded with the tier alive")
	}
	if stA.LeasesGranted+stB.LeasesGranted == 0 {
		t.Error("at least one lease should have been granted fleet-wide")
	}
	if stA.BlobPuts+stB.BlobPuts == 0 {
		t.Error("at least one elaboration checkpoint should have been published")
	}
}

// tierKillPipeline wraps a pipeline and fires kill once, right before the
// sample at index at is customized — deterministically mid-run under the
// serial protocol.
type tierKillPipeline struct {
	inner *RawPipeline
	at    int
	once  sync.Once
	kill  func()
}

func (p *tierKillPipeline) Name() string { return p.inner.Name() }
func (p *tierKillPipeline) Customize(ctx context.Context, task *Task, sample int) (string, error) {
	if sample >= p.at {
		p.once.Do(p.kill)
	}
	return p.inner.Customize(ctx, task, sample)
}

// TestReplicaDegradesWhenTierDiesMidRun kills the cache server between two
// samples of a serial Pass@k run. The replica must finish every remaining
// sample local-only — no failed requests, results byte-identical to a run
// that never had a tier — and warn exactly once.
func TestReplicaDegradesWhenTierDiesMidRun(t *testing.T) {
	const seed, k, killAt = 20250706, 5, 2
	d := designs.RiscV32i()

	// Reference run: same wrapped pipeline (kill disarmed), no tier.
	ref := &tierKillPipeline{inner: &RawPipeline{Model: llm.New(llm.GPT4o, seed)}, at: killAt, kill: func() {}}
	want, err := RunPassKOpts(context.Background(), ref, d, k, testLib, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}

	srv := remotecache.NewServer(remotecache.ServerConfig{QoR: qorlog.NewMemoryStore(0)})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var mu sync.Mutex
	var warnings []string
	client, tier, ckpt := newReplica(t, ts.URL, "replica-doomed", func(format string, args ...any) {
		mu.Lock()
		warnings = append(warnings, format)
		mu.Unlock()
	})

	p := &tierKillPipeline{
		inner: &RawPipeline{Model: llm.New(llm.GPT4o, seed)},
		at:    killAt,
		kill: func() {
			tier.Flush() // let in-flight publishes finish so Close doesn't race them
			ts.CloseClientConnections()
			ts.Close()
		},
	}
	got, err := RunPassKOpts(context.Background(), p, d, k, testLib,
		EvalOptions{Checkpoints: ckpt, Results: tier})
	if err != nil {
		t.Fatalf("run must survive the tier dying mid-flight: %v", err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Errorf("degraded run diverged from the tierless run:\nwant: %+v\ngot:  %+v", want, got)
	}
	if !client.Degraded() {
		t.Error("client should be in sticky local-only mode after the tier died")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(warnings) != 1 {
		t.Errorf("degradation must warn exactly once, got %d warnings: %q", len(warnings), warnings)
	}
}
