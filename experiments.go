package chatls

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/circuitmentor"
	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/overload"
	"repro/internal/qorlog"
	"repro/internal/resilience"
	"repro/internal/synth"
	"repro/internal/synthrag"
	"repro/internal/textembed"
	"repro/internal/vecindex"
	"repro/internal/workpool"
)

// ProtocolSeed is the paper's evaluation seed (date of the protocol run).
const ProtocolSeed = 20250706

// DesignError records a design that failed during a sweep; the sweep
// continues over the remaining designs and returns partial rows.
type DesignError struct {
	Design string
	Err    error
}

func (e DesignError) Error() string { return fmt.Sprintf("%s: %v", e.Design, e.Err) }

// Unwrap exposes the cause so errors.Is/As see through the design wrapper.
func (e DesignError) Unwrap() error { return e.Err }

// SweepErrors aggregates the per-design failures of one experiment sweep.
// Callers receive it alongside the partial rows; a fatal error (context
// cancellation or timeout) aborts the sweep instead.
type SweepErrors []DesignError

func (s SweepErrors) Error() string {
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.Error()
	}
	return fmt.Sprintf("%d design(s) failed: %s", len(s), strings.Join(parts, "; "))
}

// OrNil returns the aggregate as an error, or a true nil when empty — never
// a non-nil interface holding an empty slice.
func (s SweepErrors) OrNil() error {
	if len(s) == 0 {
		return nil
	}
	return s
}

// ExperimentConfig parameterizes the paper-reproduction experiments.
type ExperimentConfig struct {
	Seed        int64
	K           int // Pass@k samples (paper: 5)
	TrainEpochs int // metric-learning epochs for the database build
	// Workers bounds concurrency. For Pass@k sample evaluation 0 or 1 keeps
	// the paper's serial protocol; higher values only change wall-clock
	// (samples are seeded by index), but default serial keeps results
	// byte-identical run to run regardless of scheduling. The database build
	// and the Table IV sweep instead fan out across GOMAXPROCS when Workers
	// is 0: their per-design work is pure and results are assembled in design
	// order, so any worker count produces identical output (1 forces serial).
	Workers  int
	Lib      *liberty.Library
	Designs  []*designs.Design // nil = the full Table IV benchmark set
	SoCCount int               // Fig. 5 query workload size
	// Checkpoints, when non-nil, is shared across every synthesis run of the
	// experiment: Pass@k samples, baselines, and iterative-resynthesis rounds
	// restore post-link elaboration state instead of re-parsing identical
	// sources. Results are bit-identical with or without it (nil disables
	// checkpointing); only wall-clock changes.
	Checkpoints *synth.CheckpointStore
	// Results, when non-nil, is the durable QoR store shared across the
	// experiment: sweeps over unchanged (library, design, script) inputs are
	// served from the log instead of re-synthesized — the skip-if-unchanged
	// protocol — and every fresh outcome is appended so the next process can
	// skip it too. Determinism makes served and recomputed results
	// bit-identical; nil disables result caching. A LeasedResultStore
	// (remotecache.Tier) additionally dedups the synthesis work across
	// concurrent replicas sharing one remote cache.
	Results ResultStore
	// Costs, when non-nil, is the per-stage EWMA cost model threaded into
	// every evaluation: sweeps reject designs up front when the remaining
	// context deadline cannot cover the expected work (the whole sweep
	// aborts with an error wrapping overload.ErrBudget — a doomed deadline
	// dooms every remaining design the same way). Nil disables budget
	// admission beyond an already-expired deadline.
	Costs *overload.CostModel
}

// isSweepFatal classifies errors that abort a whole sweep rather than
// skipping one design: context cancellation/timeout, and deadline-budget
// rejections (a budget too small for this design is too small for the
// rest of the sweep under the same deadline).
func isSweepFatal(err error) bool {
	return resilience.IsFatal(err) || errors.Is(err, overload.ErrBudget)
}

// DefaultConfig matches the paper's protocol.
func DefaultConfig() ExperimentConfig {
	return ExperimentConfig{Seed: ProtocolSeed, K: 5, TrainEpochs: 40, SoCCount: 16}
}

func (c *ExperimentConfig) fill() {
	if c.Seed == 0 {
		c.Seed = ProtocolSeed
	}
	if c.Lib == nil {
		c.Lib = liberty.Nangate45()
	}
	if c.Designs == nil {
		c.Designs = designs.Benchmarks()
	}
	if c.K == 0 {
		c.K = 5
	}
	if c.SoCCount == 0 {
		c.SoCCount = 16
	}
	if c.TrainEpochs == 0 {
		c.TrainEpochs = 40
	}
}

// BuildDatabase constructs the SynthRAG database for the experiments
// (Table II's corpus synthesized under the strategy palette).
func BuildDatabase(cfg ExperimentConfig) (*synthrag.Database, error) {
	cfg.fill()
	return synthrag.Build(synthrag.BuildConfig{
		Seed:        cfg.Seed,
		TrainEpochs: cfg.TrainEpochs,
		Lib:         cfg.Lib,
		Workers:     cfg.Workers,
	})
}

// ----------------------------------------------------------------------------
// Table IV: baseline QoR of the benchmark designs.

// Table4Row is one design's baseline result.
type Table4Row struct {
	Design string
	QoR    synth.QoR
}

// Table4 runs every benchmark's adapted baseline script. Designs are
// isolated: a failing design is recorded in the returned SweepErrors and the
// sweep continues; only a fatal (context) error aborts early with the rows
// gathered so far. Designs synthesize in parallel (each in its own session),
// but rows and errors are assembled in design order, so the output is
// identical to the serial sweep. With cfg.Results set, a design whose
// (library, sources, baseline script) already sits in the durable log is
// served from it without synthesizing — repeat sweeps over unchanged inputs
// cost one hash per design.
func Table4(ctx context.Context, cfg ExperimentConfig) ([]Table4Row, error) {
	cfg.fill()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type outcome struct {
		q   synth.QoR
		err error
	}
	results := make([]outcome, len(cfg.Designs))
	workpool.Run(workers, len(cfg.Designs), func(i int) {
		d := cfg.Designs[i]
		var key qorlog.Key
		if cfg.Results != nil {
			key = ResultKey(cfg.Lib, d, d.BaselineScript())
			if rec, ok := cfg.Results.Get(key); ok {
				results[i] = outcome{q: qorOf(rec)}
				return
			}
		}
		// Budget admission: a deadline that cannot cover the expected
		// baseline synthesis rejects the design before any work starts.
		if err := overload.CheckBudget(ctx, overload.StageBaseline, cfg.Costs.Expect(overload.StageBaseline)); err != nil {
			results[i] = outcome{err: err}
			return
		}
		start := time.Now()
		_, q, err := NewTaskWith(ctx, d, cfg.Lib, cfg.Checkpoints)
		if err == nil {
			cfg.Costs.Observe(overload.StageBaseline, time.Since(start))
			if cfg.Results != nil {
				cfg.Results.Put(key, recordOf(q))
			}
		}
		results[i] = outcome{q: q, err: err}
	})
	var rows []Table4Row
	var errs SweepErrors
	for i, d := range cfg.Designs {
		if err := results[i].err; err != nil {
			if isSweepFatal(err) {
				return rows, err
			}
			errs = append(errs, DesignError{Design: d.Name, Err: err})
			continue
		}
		rows = append(rows, Table4Row{Design: d.Name, QoR: results[i].q})
	}
	return rows, errs.OrNil()
}

// FormatTable4 renders Table IV.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("TABLE IV  Performance Baseline of Various Designs\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %10s %12s\n", "Design", "WNS", "CPS", "TNS", "Area (um^2)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8.2f %8.2f %10.2f %12.2f\n",
			r.Design, r.QoR.WNS, r.QoR.CPS, r.QoR.TNS, r.QoR.Area)
	}
	return b.String()
}

// ----------------------------------------------------------------------------
// Table III: Pass@5 comparison of GPT-4o, Claude 3.5 Sonnet, and ChatLS.

// Table3Cell is one model's result on one design.
type Table3Cell struct {
	Model string
	QoR   synth.QoR
	Valid int // valid samples out of K
}

// Table3Row collects all models for one design.
type Table3Row struct {
	Design string
	Cells  []Table3Cell
}

// Table3Models are the comparison's pipeline names in paper column order.
var Table3Models = []string{"gpt-4o-sim", "claude-3.5-sonnet-sim", "chatls"}

// Table3 reproduces the paper's model comparison: each pipeline customizes
// each baseline script once (single iteration), Pass@5, best-by-timing.
// A design whose evaluation fails is skipped (no row) and recorded in the
// returned SweepErrors; fatal (context) errors abort with partial rows.
func Table3(ctx context.Context, cfg ExperimentConfig, db *synthrag.Database) ([]Table3Row, error) {
	cfg.fill()
	if db == nil {
		var err error
		db, err = BuildDatabase(cfg)
		if err != nil {
			return nil, err
		}
	}
	pipelines := []Pipeline{
		&RawPipeline{Model: llm.New(llm.GPT4o, cfg.Seed)},
		&RawPipeline{Model: llm.New(llm.Claude35, cfg.Seed)},
		NewChatLS(llm.New(llm.GPT4o, cfg.Seed), db),
	}
	var rows []Table3Row
	var errs SweepErrors
	for _, d := range cfg.Designs {
		row := Table3Row{Design: d.Name}
		failed := false
		for _, p := range pipelines {
			res, err := RunPassKOpts(ctx, p, d, cfg.K, cfg.Lib, EvalOptions{Workers: cfg.Workers, Checkpoints: cfg.Checkpoints, Results: cfg.Results, Costs: cfg.Costs})
			if err != nil {
				if isSweepFatal(err) {
					return rows, err
				}
				errs = append(errs, DesignError{Design: d.Name, Err: fmt.Errorf("%s: %w", p.Name(), err)})
				failed = true
				break
			}
			row.Cells = append(row.Cells, Table3Cell{Model: p.Name(), QoR: res.Best, Valid: res.Valid})
		}
		if !failed {
			rows = append(rows, row)
		}
	}
	return rows, errs.OrNil()
}

// FormatTable3 renders Table III.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("TABLE III  Performance Comparison for Logic Synthesis Script Customization (Pass@5)\n")
	fmt.Fprintf(&b, "%-14s", "Design")
	if len(rows) > 0 {
		for _, c := range rows[0].Cells {
			fmt.Fprintf(&b, " | %-21s  WNS     CPS      TNS      Area", c.Model)
		}
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.Design)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " | %21s %7.2f %7.2f %9.2f %9.2f", "", c.QoR.WNS, c.QoR.CPS, c.QoR.TNS, c.QoR.Area)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ----------------------------------------------------------------------------
// Table II: the SynthRAG database corpus.

// Table2Row summarizes one corpus design's expert record.
type Table2Row struct {
	Design   string
	Category string
	Strategy string
	QoR      synth.QoR
}

// Table2 reports the database contents after the expert-draft build.
func Table2(db *synthrag.Database) []Table2Row {
	var rows []Table2Row
	for _, rec := range db.Strategies {
		rows = append(rows, Table2Row{
			Design:   rec.Design,
			Category: rec.Category,
			Strategy: rec.Strategy,
			QoR:      rec.QoR,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Category != rows[j].Category {
			return rows[i].Category < rows[j].Category
		}
		return rows[i].Design < rows[j].Design
	})
	return rows
}

// FormatTable2 renders the corpus overview.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("TABLE II  Overview of Hardware Designs in the Database\n")
	fmt.Fprintf(&b, "%-30s %-14s %-9s %8s %10s\n", "Category", "Design", "Strategy", "WNS", "Area")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %-14s %-9s %8.2f %10.2f\n", r.Category, r.Design, r.Strategy, r.QoR.WNS, r.QoR.Area)
	}
	return b.String()
}

// ----------------------------------------------------------------------------
// Fig. 5: SynthRAG retrieval F1 on Chipyard-style SoC configurations.

// Fig5Point is one (variant, category) F1 measurement.
type Fig5Point struct {
	Variant   string
	Category  string
	Precision float64
	Recall    float64
	F1        float64
}

// Fig5Variants are the retrieval configurations compared: full SynthRAG,
// the GNN without metric learning, and plain text embedding of module code.
var Fig5Variants = []string{"synthrag", "no-metric-learning", "text-only"}

// Fig5 evaluates module retrieval on generated SoC configurations: each SoC
// module queries the database for its top-5 most similar corpus modules;
// the majority category of the hits is the prediction, scored against the
// module's ground-truth category as precision/recall/F1 per category plus a
// macro average ("overall").
func Fig5(cfg ExperimentConfig) ([]Fig5Point, error) {
	cfg.fill()
	trained, err := synthrag.Build(synthrag.BuildConfig{Seed: cfg.Seed, TrainEpochs: cfg.TrainEpochs, SkipSynth: true, Lib: cfg.Lib})
	if err != nil {
		return nil, err
	}
	untrained, err := synthrag.Build(synthrag.BuildConfig{Seed: cfg.Seed, TrainEpochs: 0, SkipSynth: true, Lib: cfg.Lib})
	if err != nil {
		return nil, err
	}
	textIdx, textCats, embedder, err := buildTextIndex()
	if err != nil {
		return nil, err
	}

	// Query workload: SoC module graphs with ground-truth categories.
	rng := rand.New(rand.NewSource(cfg.Seed))
	type query struct {
		dg    *circuitmentor.DesignGraph
		midx  int
		truth string
	}
	var queries []query
	for i := 0; i < cfg.SoCCount; i++ {
		soc := designs.SoC(designs.RandomSoCConfig(fmt.Sprintf("q%d", i), rng))
		dg, err := circuitmentor.BuildGraph(soc.Source, soc.Top)
		if err != nil {
			return nil, err
		}
		for mi, m := range dg.Modules {
			if truth := designs.ModuleCategory(m.Name); truth != "" {
				queries = append(queries, query{dg, mi, truth})
			}
		}
	}

	categories := []string{designs.CatProcessor, designs.CatMLAccel, designs.CatVector, designs.CatDSP, designs.CatCrypto}
	var points []Fig5Point
	for _, variant := range Fig5Variants {
		// Predict each query module's category.
		preds := make([]string, len(queries))
		for qi, q := range queries {
			switch variant {
			case "synthrag":
				embs := trained.EmbedModulesOf(q.dg)
				preds[qi] = majorityCategory(trained.RetrieveModules(embs[q.midx], 5))
			case "no-metric-learning":
				embs := untrained.EmbedModulesOf(q.dg)
				preds[qi] = majorityCategory(untrained.RetrieveModules(embs[q.midx], 5))
			case "text-only":
				// Query code is identifier-obfuscated: foreign RTL shares
				// structure with the corpus, not naming conventions.
				code := designs.ObfuscateRTL(q.dg.Modules[q.midx].Code)
				hits := textIdx.Search(embedder.Embed(code), 5)
				votes := map[string]float64{}
				for _, h := range hits {
					votes[textCats[h.ID]] += simWeight(h.Score)
				}
				preds[qi] = argmaxVotes(votes)
			}
		}
		// Per-category precision/recall/F1 and macro average.
		var macroF1, macroP, macroR float64
		for _, cat := range categories {
			tp, fp, fn := 0, 0, 0
			for qi, q := range queries {
				switch {
				case preds[qi] == cat && q.truth == cat:
					tp++
				case preds[qi] == cat && q.truth != cat:
					fp++
				case preds[qi] != cat && q.truth == cat:
					fn++
				}
			}
			p := safeDiv(tp, tp+fp)
			r := safeDiv(tp, tp+fn)
			f1 := 0.0
			if p+r > 0 {
				f1 = 2 * p * r / (p + r)
			}
			points = append(points, Fig5Point{Variant: variant, Category: cat, Precision: p, Recall: r, F1: f1})
			macroF1 += f1
			macroP += p
			macroR += r
		}
		n := float64(len(categories))
		points = append(points, Fig5Point{
			Variant: variant, Category: "overall",
			Precision: macroP / n, Recall: macroR / n, F1: macroF1 / n,
		})
	}
	return points, nil
}

func buildTextIndex() (*vecindex.Flat, map[string]string, *textembed.Embedder, error) {
	corpus := append(designs.DatabaseDesigns(), designs.DatabaseVariants()...)
	corpus = append(corpus, designs.TrainingVariants()...)
	embedder := textembed.New(512)
	var texts []string
	type rec struct {
		id, cat, code string
	}
	var recs []rec
	for _, d := range corpus {
		dg, err := circuitmentor.BuildGraph(d.Source, d.Top)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, m := range dg.Modules {
			cat := designs.ModuleCategory(m.Name)
			if cat == "" {
				cat = d.Category
			}
			recs = append(recs, rec{d.Name + "/" + m.Name, cat, m.Code})
			texts = append(texts, m.Code)
		}
	}
	embedder.Fit(texts)
	idx := vecindex.NewFlat(embedder.Dim, vecindex.Cosine)
	cats := make(map[string]string, len(recs))
	for _, r := range recs {
		if err := idx.Add(r.id, embedder.Embed(r.code)); err != nil {
			return nil, nil, nil, err
		}
		cats[r.id] = r.cat
	}
	return idx, cats, embedder, nil
}

// majorityCategory predicts by similarity-weighted voting over the top
// hits: a single near-exact structural match outweighs several merely
// related neighbours.
func majorityCategory(hits []synthrag.ModuleHit) string {
	votes := map[string]float64{}
	for _, h := range hits {
		votes[h.Record.Category] += simWeight(h.Sim)
	}
	return argmaxVotes(votes)
}

// simWeight sharpens cosine similarity into a vote weight.
func simWeight(sim float64) float64 {
	if sim <= 0 {
		return 0
	}
	w := sim
	for i := 0; i < 7; i++ {
		w *= sim
	}
	return w
}

func argmaxVotes(votes map[string]float64) string {
	best := ""
	bestN := -1.0
	keys := make([]string, 0, len(votes))
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if votes[k] > bestN {
			best, bestN = k, votes[k]
		}
	}
	return best
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// FormatFig5 renders the retrieval results.
func FormatFig5(points []Fig5Point) string {
	var b strings.Builder
	b.WriteString("Fig. 5  Performance of SynthRAG (retrieval F1 on SoC configurations)\n")
	fmt.Fprintf(&b, "%-20s %-30s %9s %9s %9s\n", "Variant", "Category", "Precision", "Recall", "F1")
	for _, p := range points {
		fmt.Fprintf(&b, "%-20s %-30s %9.3f %9.3f %9.3f\n", p.Variant, p.Category, p.Precision, p.Recall, p.F1)
	}
	return b.String()
}

// ----------------------------------------------------------------------------
// Ablations: remove framework components, per DESIGN.md's experiment index.

// AblationRow is one (variant, design) outcome.
type AblationRow struct {
	Variant string
	Design  string
	QoR     synth.QoR
	Valid   int
}

// AblationVariants are the framework configurations compared.
var AblationVariants = []string{"chatls", "no-rag", "no-expert", "no-mentor", "raw"}

// Ablations measures each framework component's contribution on the
// trait-bound designs. Per (variant, design) failures are recorded in the
// returned SweepErrors and the sweep continues; fatal (context) errors
// abort with partial rows.
func Ablations(ctx context.Context, cfg ExperimentConfig, db *synthrag.Database) ([]AblationRow, error) {
	cfg.fill()
	if db == nil {
		var err error
		db, err = BuildDatabase(cfg)
		if err != nil {
			return nil, err
		}
	}
	if len(cfg.Designs) == len(designs.Benchmarks()) {
		cfg.Designs = []*designs.Design{designs.AES(), designs.DynamicNode(), designs.TinyRocket()}
	}
	mk := func(variant string) Pipeline {
		model := llm.New(llm.GPT4o, cfg.Seed)
		switch variant {
		case "raw":
			return &RawPipeline{Model: model}
		default:
			p := NewChatLS(model, db)
			switch variant {
			case "no-rag":
				p.DisableRAG = true
			case "no-expert":
				p.DisableExpert = true
			case "no-mentor":
				p.DisableMentor = true
			}
			return p
		}
	}
	var rows []AblationRow
	var errs SweepErrors
	for _, variant := range AblationVariants {
		p := mk(variant)
		for _, d := range cfg.Designs {
			res, err := RunPassKOpts(ctx, p, d, cfg.K, cfg.Lib, EvalOptions{Workers: cfg.Workers, Checkpoints: cfg.Checkpoints, Results: cfg.Results, Costs: cfg.Costs})
			if err != nil {
				if isSweepFatal(err) {
					return rows, err
				}
				errs = append(errs, DesignError{Design: variant + "/" + d.Name, Err: err})
				continue
			}
			rows = append(rows, AblationRow{Variant: variant, Design: d.Name, QoR: res.Best, Valid: res.Valid})
		}
	}
	return rows, errs.OrNil()
}

// ----------------------------------------------------------------------------
// Iterative resynthesis: the paper's point that synthesis is not one-shot.

// IterationRow is one design's QoR after k customization iterations
// (iteration 0 is the baseline script).
type IterationRow struct {
	Design string
	Iter   int
	QoR    synth.QoR
	Script string
}

// IterativeClosure runs the ChatLS pipeline for several customization
// iterations: each round's report and script feed the next round's prompt,
// with the requirement switching from timing closure to area recovery once
// timing is met — the resynthesis loop of the paper's introduction.
// A design whose baseline fails is skipped and recorded in the returned
// SweepErrors; a non-fatal Customize failure wastes that iteration (the
// previous script stands) and the loop continues.
//
// The loop cuts off early in ninja's "restat" style: every round is a
// deterministic function of the loop state (current QoR, script, report,
// and the requirement derived from them), so a round that completes without
// adopting a new script is a fixed point — all later rounds would reproduce
// it exactly. The remaining rows are filled in without re-evaluating, and
// the output stays byte-identical to the uncut loop. With cfg.Results set,
// a candidate script whose QoR is already logged and would NOT be adopted
// skips its synthesis run too (adoption needs the fresh report, so
// improving rounds always run the tool).
func IterativeClosure(ctx context.Context, cfg ExperimentConfig, db *synthrag.Database, iters int) ([]IterationRow, error) {
	cfg.fill()
	if db == nil {
		var err error
		db, err = BuildDatabase(cfg)
		if err != nil {
			return nil, err
		}
	}
	// adopts reproduces the user's acceptance rule: under timing violation a
	// candidate must improve timing; once timing is met it must keep timing
	// and shrink area.
	adopts := func(cur, cand synth.QoR) bool {
		if cur.WNS < 0 {
			return BetterTiming(cand, cur)
		}
		return cand.WNS >= 0 && cand.Area < cur.Area
	}
	var rows []IterationRow
	var errs SweepErrors
	for _, d := range cfg.Designs {
		p := NewChatLS(llm.New(llm.GPT4o, cfg.Seed), db)
		p.Costs = cfg.Costs
		if err := overload.CheckBudget(ctx, overload.StageBaseline, cfg.Costs.Expect(overload.StageBaseline)); err != nil {
			return rows, err
		}
		task, q, err := NewTaskWith(ctx, d, cfg.Lib, cfg.Checkpoints)
		if err != nil {
			if isSweepFatal(err) {
				return rows, err
			}
			errs = append(errs, DesignError{Design: d.Name, Err: err})
			continue
		}
		rows = append(rows, IterationRow{Design: d.Name, Iter: 0, QoR: q, Script: task.Baseline})
		script := task.Baseline
		for it := 1; it <= iters; it++ {
			if q.WNS < 0 {
				task.Requirement = "Timing is violated. Choose the resynthesis step that targets the reported bottleneck; do not change the clock period."
			} else {
				task.Requirement = "Timing is met. Recover area while keeping every timing constraint satisfied."
			}
			task.Baseline = script
			next, err := p.Customize(ctx, task, 0)
			if err != nil {
				if isSweepFatal(err) {
					return rows, err
				}
				// A wasted iteration: the previous script stands.
				rows = append(rows, IterationRow{Design: d.Name, Iter: it, QoR: q, Script: script})
				continue
			}
			// Durable-log lookup: a logged QoR decides adoption without
			// running the tool. A non-adopted candidate contributes nothing
			// but its QoR, so a hit skips synthesis; an adopting round still
			// runs, because adoption feeds the fresh report into the prompt.
			var candidate *synth.QoR
			var reports []string
			var key qorlog.Key
			if cfg.Results != nil {
				key = ResultKey(cfg.Lib, d, next)
				if rec, ok := cfg.Results.Get(key); ok {
					cq := qorOf(rec)
					candidate = &cq
				}
			}
			if candidate == nil || adopts(q, *candidate) {
				// Budget admission before the synthesis run: no partial
				// tool work on a doomed deadline.
				if err := overload.CheckBudget(ctx, overload.StageSynth, cfg.Costs.Expect(overload.StageSynth)); err != nil {
					return rows, err
				}
				synthStart := time.Now()
				sess := synth.NewSession(cfg.Lib)
				sess.Checkpoints = cfg.Checkpoints
				sess.AddSource(d.FileName, d.Source)
				res, err := sess.RunContext(ctx, next)
				if err != nil {
					if isSweepFatal(err) {
						return rows, err
					}
					// A failed iteration keeps the previous script (the user
					// would not adopt a script that does not run).
					rows = append(rows, IterationRow{Design: d.Name, Iter: it, QoR: q, Script: script})
					continue
				}
				cfg.Costs.Observe(overload.StageSynth, time.Since(synthStart))
				candidate = res.QoR
				reports = res.Reports
				if cfg.Results != nil {
					cfg.Results.Put(key, recordOf(*res.QoR))
				}
			}
			// The user compares reports and adopts the new script only when
			// it improves the active objective.
			if adopts(q, *candidate) {
				q = *candidate
				script = next
				task.BaselineReport = strings.Join(reports, "\n")
				rows = append(rows, IterationRow{Design: d.Name, Iter: it, QoR: q, Script: script})
				continue
			}
			// Early cutoff: the round ran cleanly and changed nothing, so the
			// loop state is a fixed point — every later round reproduces this
			// one. Fill the remaining rows and stop re-evaluating.
			for ; it <= iters; it++ {
				rows = append(rows, IterationRow{Design: d.Name, Iter: it, QoR: q, Script: script})
			}
			break
		}
	}
	return rows, errs.OrNil()
}

// FormatIterations renders the iteration study.
func FormatIterations(rows []IterationRow) string {
	var b strings.Builder
	b.WriteString("Iterative resynthesis (ChatLS, requirement adapts to the last report)\n")
	fmt.Fprintf(&b, "%-14s %5s %8s %8s %10s %12s\n", "Design", "iter", "WNS", "CPS", "TNS", "Area")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %5d %8.2f %8.2f %10.2f %12.2f\n", r.Design, r.Iter, r.QoR.WNS, r.QoR.CPS, r.QoR.TNS, r.QoR.Area)
	}
	return b.String()
}

// ----------------------------------------------------------------------------
// Rerank-weight sweep: the alpha/beta/gamma trade-off of Eq. 5.

// RerankPoint is one weight combination's retrieval fitness.
type RerankPoint struct {
	Alpha, Beta, Gamma float64
	// TraitMatch is the fraction of benchmarks whose top-1 retrieved
	// exemplar shares a structural trait with the query design.
	TraitMatch float64
	// MetQuality is the mean stored-QoR quality of the top-1 exemplars.
	MetQuality float64
}

// RerankSweep measures how the Eq. 5 weights steer retrieval: similarity
// only (beta=gamma=0) ignores whether the exemplar's script even closed
// timing; adding quality (beta) and trait compatibility (gamma) lifts the
// match rate — the design decision behind the domain-specific reranker.
func RerankSweep(cfg ExperimentConfig, db *synthrag.Database) ([]RerankPoint, error) {
	cfg.fill()
	if db == nil {
		var err error
		db, err = BuildDatabase(cfg)
		if err != nil {
			return nil, err
		}
	}
	type query struct {
		emb    []float64
		traits []string
	}
	var queries []query
	for _, d := range cfg.Designs {
		emb, _, err := db.EmbedDesign(d.Source, d.Top)
		if err != nil {
			return nil, err
		}
		a, err := circuitmentor.Analyze(d.Source, d.Top, d.Period, cfg.Lib)
		if err != nil {
			return nil, err
		}
		queries = append(queries, query{emb, a.Traits})
	}
	combos := []RerankPoint{
		{Alpha: 1.0, Beta: 0.0, Gamma: 0.0},
		{Alpha: 0.7, Beta: 0.3, Gamma: 0.0},
		{Alpha: 0.7, Beta: 0.3, Gamma: 0.25},
		{Alpha: 0.5, Beta: 0.5, Gamma: 0.25},
		{Alpha: 0.0, Beta: 1.0, Gamma: 0.0},
		{Alpha: 0.0, Beta: 0.0, Gamma: 1.0},
	}
	for i := range combos {
		p := &combos[i]
		match, qual := 0.0, 0.0
		for _, q := range queries {
			hits := db.RetrieveStrategiesFor(q.emb, q.traits, 1, p.Alpha, p.Beta, p.Gamma)
			if len(hits) == 0 {
				continue
			}
			rec := hits[0].Record
			qual += rec.Quality
			for _, rt := range rec.Traits {
				hit := false
				for _, qt := range q.traits {
					if rt == qt {
						hit = true
					}
				}
				if hit {
					match++
					break
				}
			}
		}
		n := float64(len(queries))
		p.TraitMatch = match / n
		p.MetQuality = qual / n
	}
	return combos, nil
}

// FormatRerankSweep renders the sweep.
func FormatRerankSweep(points []RerankPoint) string {
	var b strings.Builder
	b.WriteString("Rerank weight sweep (Eq. 5): top-1 exemplar fitness over the benchmark set\n")
	fmt.Fprintf(&b, "%6s %6s %6s %12s %12s\n", "alpha", "beta", "gamma", "trait_match", "mean_quality")
	for _, p := range points {
		fmt.Fprintf(&b, "%6.2f %6.2f %6.2f %12.2f %12.2f\n", p.Alpha, p.Beta, p.Gamma, p.TraitMatch, p.MetQuality)
	}
	return b.String()
}

// FormatAblations renders the ablation study.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation study (Pass@5 best QoR)\n")
	fmt.Fprintf(&b, "%-12s %-14s %8s %8s %10s %12s %6s\n", "Variant", "Design", "WNS", "CPS", "TNS", "Area", "valid")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-14s %8.2f %8.2f %10.2f %12.2f %6d\n",
			r.Variant, r.Design, r.QoR.WNS, r.QoR.CPS, r.QoR.TNS, r.QoR.Area, r.Valid)
	}
	return b.String()
}
