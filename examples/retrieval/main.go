// Retrieval: SynthRAG in isolation — the three retrieval modalities of the
// paper's TABLE I exercised directly.
//
//	go run ./examples/retrieval
//
// A fresh SoC configuration (not in the database) queries: (1) strategy
// retrieval by graph embedding with the Eq. 5 rerank, (2) module-code
// retrieval by direct Cypher query, (3) manual retrieval by text embedding
// with the LLM as reranker.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/designs"
	"repro/internal/llm"
	"repro/internal/synthrag"
)

func main() {
	fmt.Println("building SynthRAG database (with expert-draft synthesis)...")
	db, err := synthrag.Build(synthrag.BuildConfig{Seed: 9, TrainEpochs: 40})
	if err != nil {
		log.Fatal(err)
	}

	// A new SoC that is not in the database.
	soc := designs.SoC(designs.RandomSoCConfig("demo", rand.New(rand.NewSource(9))))
	fmt.Printf("\nquery design: %s (components: %d)\n", soc.Name, strings.Count(soc.Source, "endmodule"))

	// Modality 1: graph-embedding retrieval with rerank (Eq. 4 + Eq. 5).
	emb, dg, err := db.EmbedDesign(soc.Source, soc.Top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n[1] strategy retrieval (graph embedding, alpha=0.7 beta=0.3):")
	for _, h := range db.RetrieveStrategies(emb, 3, 0.7, 0.3) {
		fmt.Printf("  %-14s sim %.3f  quality %.2f  strategy %-8s plan: %s\n",
			h.Record.Design, h.Sim, h.Record.Quality, h.Record.Strategy,
			strings.Join(h.Record.Plan, "; "))
	}

	// Per-module retrieval: which corpus modules resemble each SoC module?
	fmt.Println("\n    per-module nearest neighbours:")
	embs := db.EmbedModulesOf(dg)
	for mi, m := range dg.Modules {
		if designs.ModuleCategory(m.Name) == "" {
			continue
		}
		hits := db.RetrieveModules(embs[mi], 3)
		var names []string
		for _, h := range hits {
			names = append(names, fmt.Sprintf("%s/%s(%.2f)", h.Record.Design, h.Record.Module, h.Sim))
		}
		fmt.Printf("    %-16s -> %s\n", m.Name, strings.Join(names, ", "))
	}

	// Modality 2: graph-structure retrieval via Cypher.
	fmt.Println("\n[2] module code by Cypher (direct query):")
	code, err := db.ModuleCode("rocket", "cpu_alu_rocket")
	if err != nil {
		log.Fatal(err)
	}
	firstLine := strings.SplitN(code, "\n", 2)[0]
	fmt.Printf("  MATCH (m:Module {name:'cpu_alu_rocket', design:'rocket'}) RETURN m.code\n  -> %s ...\n", firstLine)

	cell, err := db.CellInfo("DFF_X1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  MATCH (c:Cell {name:'DFF_X1'}) RETURN ...\n  -> %v\n", cell)

	// Modality 3: manual retrieval with the LLM as reranker.
	fmt.Println("\n[3] manual retrieval (text embedding + LLM rerank):")
	model := llm.New(llm.GPT4o, 9)
	for _, query := range []string{
		"my critical path has a register placed after three rounds of logic",
		"one net drives sixty loads and dominates the path delay",
	} {
		hits := db.SearchManual(query, 2, model)
		fmt.Printf("  q: %s\n", query)
		for _, h := range hits {
			fmt.Printf("     -> %-24s (%.3f) %s\n", h.Doc.ID, h.Score, h.Doc.Title)
		}
	}
}
