// Quickstart: the smallest end-to-end use of the ChatLS reproduction.
//
//	go run ./examples/quickstart
//
// It builds the SynthRAG database, asks the full ChatLS pipeline to
// customize the synthesis script of the dynamic_node NoC router (a
// high-fanout design whose baseline misses timing), runs both scripts
// through the synthesis simulator, and prints the before/after QoR.
package main

import (
	"context"
	"fmt"
	"log"

	chatls "repro"
	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/synth"
)

func main() {
	lib := liberty.Nangate45()
	design := designs.DynamicNode()

	// 1. Build the retrieval database: the Table II corpus is synthesized
	//    under the strategy palette to find each design's expert script,
	//    and CircuitMentor's GNN is metric-trained on its module graphs.
	fmt.Println("building SynthRAG database...")
	db, err := chatls.BuildDatabase(chatls.ExperimentConfig{Seed: 1, TrainEpochs: 40, Lib: lib})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Package the customization task: the baseline script runs once so
	//    the pipeline sees the tool report, like a user pasting their log.
	ctx := context.Background()
	task, baseline, err := chatls.NewTask(ctx, design, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:   WNS %7.3f  CPS %7.3f  area %9.1f\n",
		baseline.WNS, baseline.CPS, baseline.Area)

	// 3. Customize with the full pipeline: CircuitMentor analysis ->
	//    SynthRAG retrieval -> generation -> SynthExpert CoT refinement.
	pipeline := chatls.NewChatLS(llm.New(llm.GPT4o, 1), db)
	script, err := pipeline.Customize(ctx, task, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncustomized script:")
	fmt.Println(script)

	// 4. Run the customized script through the synthesis simulator.
	sess := synth.NewSession(lib)
	sess.AddSource(design.FileName, design.Source)
	res, err := sess.Run(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customized: WNS %7.3f  CPS %7.3f  area %9.1f\n",
		res.QoR.WNS, res.QoR.CPS, res.QoR.Area)
	if res.QoR.WNS >= 0 && baseline.WNS < 0 {
		fmt.Println("\ntiming closed: the pipeline picked fanout buffering for the router's broadcast nets.")
	}
}
