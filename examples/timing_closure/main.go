// Timing closure: the iterative resynthesis workflow from the paper's
// introduction — synthesis is not a one-shot run; after the first compile
// you read the report and choose the next step from it.
//
//	go run ./examples/timing_closure
//
// The example walks tinyRocket (a pipeline with a grossly imbalanced
// execute stage) through two customization iterations: the first closes
// most of the violation with retiming, the second trades the recovered
// slack for area.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	chatls "repro"
	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/synth"
)

func main() {
	lib := liberty.Nangate45()
	design := designs.TinyRocket()

	db, err := chatls.BuildDatabase(chatls.ExperimentConfig{Seed: 3, TrainEpochs: 40, Lib: lib})
	if err != nil {
		log.Fatal(err)
	}
	pipeline := chatls.NewChatLS(llm.New(llm.GPT4o, 3), db)

	ctx := context.Background()
	task, q, err := chatls.NewTask(ctx, design, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration 0 (baseline): WNS %7.3f  TNS %8.2f  area %9.1f\n", q.WNS, q.TNS, q.Area)

	script := task.Baseline
	for iter := 1; iter <= 2; iter++ {
		// Requirement changes as the situation changes — exactly the
		// iterative flow the paper motivates.
		if q.WNS < 0 {
			task.Requirement = "Timing is violated. Choose the resynthesis step that targets the reported bottleneck and close timing without changing the clock."
		} else {
			task.Requirement = "Timing is met. Recover as much area as possible while keeping all timing constraints satisfied."
		}
		task.Baseline = script

		next, err := pipeline.Customize(ctx, task, 0)
		if err != nil {
			log.Fatal(err)
		}
		sess := synth.NewSession(lib)
		sess.AddSource(design.FileName, design.Source)
		res, err := sess.Run(next)
		if err != nil {
			log.Fatalf("iteration %d script failed: %v", iter, err)
		}
		q = *res.QoR
		script = next
		task.BaselineReport = strings.Join(res.Reports, "\n")
		fmt.Printf("iteration %d:            WNS %7.3f  TNS %8.2f  area %9.1f\n", iter, q.WNS, q.TNS, q.Area)

		// Show which optimization commands the pipeline chose.
		var chosen []string
		for _, line := range strings.Split(next, "\n") {
			f := strings.Fields(line)
			if len(f) == 0 {
				continue
			}
			switch f[0] {
			case "compile", "compile_ultra", "optimize_registers", "balance_buffers", "ungroup", "set_max_fanout":
				chosen = append(chosen, line)
			}
		}
		fmt.Printf("              commands: %s\n", strings.Join(chosen, " | "))
	}
}
