// GraphDB tour: the embedded property-graph database and its Cypher subset,
// used the way CircuitMentor uses Neo4j — store a circuit's hierarchical
// graph and answer structural questions with path queries.
//
//	go run ./examples/graphdb_tour
package main

import (
	"fmt"
	"log"

	"repro/internal/circuitmentor"
	"repro/internal/designs"
	"repro/internal/graphdb"
)

func main() {
	db := graphdb.New()

	// Load two benchmark designs as hierarchical graphs.
	for _, d := range []*designs.Design{designs.JPEG(), designs.RiscV32i()} {
		dg, err := circuitmentor.BuildGraph(d.Source, d.Top)
		if err != nil {
			log.Fatal(err)
		}
		circuitmentor.LoadIntoDB(db, dg, map[string]any{"name": d.Name, "category": d.Category})
	}
	fmt.Printf("graph database: %d nodes, %d relationships\n\n", db.NodeCount(), db.RelCount())

	run := func(q string, params map[string]any) {
		fmt.Println("cypher>", q)
		res, err := db.Query(q, params)
		if err != nil {
			log.Fatal(err)
		}
		for i, row := range res.Rows {
			if i >= 6 {
				fmt.Printf("  ... %d more rows\n", len(res.Rows)-6)
				break
			}
			fmt.Printf("  %v\n", row)
		}
		fmt.Println()
	}

	// Which modules does each design contain?
	run(`MATCH (d:Design {name: 'riscv32i'})-[:CONTAINS]->(m:Module) RETURN m.name, m.nodes ORDER BY m.nodes DESC`, nil)

	// Walk the instantiation hierarchy (variable-length path): everything
	// reachable from the jpeg top within four levels.
	run(`MATCH (t:Module {name: 'jpeg'})-[:INSTANTIATES*1..4]->(s:Module) RETURN s.name ORDER BY s.name LIMIT 8`, nil)

	// The query SynthRAG issues for path-located module code.
	run(`MATCH (m:Module {name: $mod, design: $design}) RETURN m.code AS source`, map[string]any{
		"mod": "rv_alu", "design": "riscv32i",
	})

	// Filtering with WHERE: large leaf modules.
	run(`MATCH (m:Module) WHERE m.nodes > 10 AND NOT m.name CONTAINS 'wrap' RETURN m.design, m.name, m.nodes ORDER BY m.nodes DESC LIMIT 5`, nil)

	// Aggregation: how deep is the jpeg wrapper nest?
	run(`MATCH (t:Module {name: 'jpeg'})-[:INSTANTIATES*1..16]->(s:Module) WHERE s.name CONTAINS 'wrap' RETURN count(s)`, nil)
}
