package chatls

import (
	"context"
	"fmt"
	"time"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/overload"
	"repro/internal/qorlog"
	"repro/internal/resilience"
	"repro/internal/synth"
	"repro/internal/workpool"
)

// SampleOutcome records one Pass@k attempt.
type SampleOutcome struct {
	Script string
	QoR    *synth.QoR
	Err    string // non-empty when the script failed in the tool
	// Degraded lists components that fell back during generation of this
	// sample (empty when the pipeline ran at full strength or does not
	// report degradation).
	Degraded []string
}

// EvalResult is the Pass@k outcome for one (pipeline, design) cell of
// Table III.
type EvalResult struct {
	Pipeline   string
	Design     string
	K          int
	Baseline   synth.QoR
	Best       synth.QoR
	BestSample int // -1 when no sample produced a runnable script
	Valid      int
	Samples    []SampleOutcome
}

// Improved reports whether the best customized script beat the baseline on
// timing.
func (r EvalResult) Improved() bool {
	return r.BestSample >= 0 && BetterTiming(r.Best, r.Baseline)
}

// BetterTiming orders QoR the way the evaluation selects the best sample:
// WNS first, then CPS, then smaller area.
func BetterTiming(a, b synth.QoR) bool {
	if a.WNS != b.WNS {
		return a.WNS > b.WNS
	}
	if a.CPS != b.CPS {
		return a.CPS > b.CPS
	}
	return a.Area < b.Area
}

// degradationReporter is implemented by pipelines that record graceful
// degradation (ChatLSPipeline); RunPassK copies the report into the sample.
type degradationReporter interface {
	Degradation() *resilience.DegradationReport
}

// EvalOptions tunes how a Pass@k evaluation runs. The zero value is the
// paper's serial protocol with no checkpoint sharing.
type EvalOptions struct {
	// Workers bounds sample-evaluation concurrency; <= 1 is the serial
	// protocol. See RunPassKParallel for the concurrency contract.
	Workers int
	// Checkpoints, when non-nil, is a shared elaboration-checkpoint store:
	// every sample's synthesis run (and the baseline, for entry points that
	// build the task) restores post-link state from it instead of
	// re-elaborating identical sources. Results are bit-identical either way.
	Checkpoints *synth.CheckpointStore
	// Results, when non-nil, is the durable QoR store: each sample's
	// synthesis outcome is looked up by content key (library fingerprint,
	// sources, script) before running the tool, and logged after. A hit
	// skips the run entirely; because the simulator is deterministic and the
	// log round-trips float bits exactly, a served result is bit-identical
	// to a recomputed one. Nil disables result caching.
	//
	// A store that also implements LeasedResultStore (remotecache.Tier)
	// additionally coordinates work fleet-wide: on a miss, the sample claims
	// a lease before synthesizing, so concurrent replicas evaluating the
	// same (library, sources, script) run the tool exactly once between
	// them and the rest serve the published record.
	Results ResultStore
	// Costs, when non-nil, is the per-stage EWMA cost model used for
	// deadline-budget admission: a sample whose expected cost exceeds the
	// remaining context deadline is rejected up front — before any
	// generation, lease claim, or synthesis — with an error wrapping
	// overload.ErrBudget, and observed baseline/sample/synthesis durations
	// feed the model. Nil disables budget checks (beyond an already-expired
	// deadline) and cost learning.
	Costs *overload.CostModel
}

// RunPassK evaluates a pipeline on a design with k samples (the paper's
// Pass@5 protocol): each sample's script runs through the synthesis tool;
// scripts that fail (hallucinated commands, bad options) count as invalid;
// the best valid QoR is reported. When every sample fails, the baseline QoR
// stands (the customization attempt is wasted, not destructive).
//
// Per-sample failures are contained — a failed Customize or synthesis run
// records the error in the sample and the remaining samples still run.
// Only context cancellation/timeout aborts the whole evaluation.
func RunPassK(ctx context.Context, p Pipeline, d *designs.Design, k int, lib *liberty.Library) (EvalResult, error) {
	return RunPassKOpts(ctx, p, d, k, lib, EvalOptions{})
}

// RunPassKParallel is RunPassK with the k samples evaluated on a bounded
// worker pool. workers <= 1 is the serial protocol and produces
// byte-identical results to RunPassK; workers > 1 requires a pipeline that
// is safe for concurrent use (ResultPipeline implementations, or any
// stateless Pipeline) and yields the same samples, best, and counts — only
// wall-clock changes, because every sample is seeded by its index.
func RunPassKParallel(ctx context.Context, p Pipeline, d *designs.Design, k int, lib *liberty.Library, workers int) (EvalResult, error) {
	return RunPassKOpts(ctx, p, d, k, lib, EvalOptions{Workers: workers})
}

// RunPassKOpts is RunPassK with explicit options (worker pool, shared
// checkpoint store).
func RunPassKOpts(ctx context.Context, p Pipeline, d *designs.Design, k int, lib *liberty.Library, opts EvalOptions) (EvalResult, error) {
	// Budget admission: a nearly-expired context is rejected before the
	// baseline synthesis starts, so the evaluation does no partial work.
	if err := overload.CheckBudget(ctx, overload.StageBaseline, opts.Costs.Expect(overload.StageBaseline)); err != nil {
		return EvalResult{}, err
	}
	start := time.Now()
	task, baseQoR, err := NewTaskWith(ctx, d, lib, opts.Checkpoints)
	if err != nil {
		return EvalResult{}, err
	}
	opts.Costs.Observe(overload.StageBaseline, time.Since(start))
	return EvalTaskOpts(ctx, p, task, baseQoR, k, lib, opts)
}

// EvalTask runs the Pass@k evaluation over an already-constructed task —
// the entry point for callers that cache baseline synthesis (the serving
// daemon). See RunPassKParallel for the workers contract.
func EvalTask(ctx context.Context, p Pipeline, task *Task, baseQoR synth.QoR, k int, lib *liberty.Library, workers int) (EvalResult, error) {
	return EvalTaskOpts(ctx, p, task, baseQoR, k, lib, EvalOptions{Workers: workers})
}

// EvalTaskOpts is EvalTask with explicit options.
func EvalTaskOpts(ctx context.Context, p Pipeline, task *Task, baseQoR synth.QoR, k int, lib *liberty.Library, opts EvalOptions) (EvalResult, error) {
	workers := opts.Workers
	res := EvalResult{
		Pipeline:   p.Name(),
		Design:     task.Design.Name,
		K:          k,
		Baseline:   baseQoR,
		Best:       baseQoR,
		BestSample: -1,
	}
	if workers > k {
		workers = k
	}

	if workers <= 1 {
		for s := 0; s < k; s++ {
			out, fatal := evalSample(ctx, p, task, lib, s, opts)
			if fatal != nil && out == nil {
				return res, fatal
			}
			res.Samples = append(res.Samples, *out)
			if fatal != nil {
				return res, fatal
			}
			accumulate(&res, *out, s)
		}
		return res, nil
	}

	type slot struct {
		out   *SampleOutcome
		fatal error
	}
	slots := make([]slot, k)
	pool := workpool.New(workers, k)
	for s := 0; s < k; s++ {
		s := s
		pool.TrySubmit(func() {
			slots[s].out, slots[s].fatal = evalSample(ctx, p, task, lib, s, opts)
		})
	}
	pool.Close()

	// Fold in index order so Best/BestSample match the serial protocol; a
	// fatal error truncates the result at its sample, as the serial loop
	// would have.
	for s := 0; s < k; s++ {
		if slots[s].fatal != nil && slots[s].out == nil {
			return res, slots[s].fatal
		}
		res.Samples = append(res.Samples, *slots[s].out)
		if slots[s].fatal != nil {
			return res, slots[s].fatal
		}
		accumulate(&res, *slots[s].out, s)
	}
	return res, nil
}

func accumulate(res *EvalResult, out SampleOutcome, s int) {
	if out.QoR == nil {
		return
	}
	res.Valid++
	if res.BestSample < 0 || BetterTiming(*out.QoR, res.Best) {
		res.Best = *out.QoR
		res.BestSample = s
	}
}

// evalSample customizes and synthesizes one Pass@k sample. A nil outcome
// with a non-nil error means the failure preceded any recordable sample
// (fatal Customize error); a non-nil outcome with a non-nil error means the
// sample is recorded and the evaluation must then abort (fatal synthesis
// error). When opts.Results holds the outcome for this exact (library,
// sources, script), the synthesis run is skipped and the logged QoR is
// served instead — bit-identical because the simulator is deterministic.
func evalSample(ctx context.Context, p Pipeline, task *Task, lib *liberty.Library, s int, opts EvalOptions) (*SampleOutcome, error) {
	// Budget admission: reject before customization when the remaining
	// deadline cannot cover a whole sample. Returning (nil, err) makes the
	// evaluation abort with no recorded partial sample.
	if err := overload.CheckBudget(ctx, overload.StageSample, opts.Costs.Expect(overload.StageSample)); err != nil {
		return nil, err
	}
	sampleStart := time.Now()
	var script string
	var out SampleOutcome
	if rp, ok := p.(ResultPipeline); ok {
		cres, err := rp.CustomizeResult(ctx, task, s)
		if err != nil {
			if resilience.IsFatal(err) {
				return nil, err
			}
			return &SampleOutcome{Err: fmt.Sprintf("customize: %v", err)}, nil
		}
		script = cres.Script
		out = SampleOutcome{Script: script, Degraded: cres.Degradation.Components()}
	} else {
		var err error
		script, err = p.Customize(ctx, task, s)
		if err != nil {
			if resilience.IsFatal(err) {
				return nil, err
			}
			return &SampleOutcome{Err: fmt.Sprintf("customize: %v", err)}, nil
		}
		out = SampleOutcome{Script: script}
		if dr, ok := p.(degradationReporter); ok {
			if rep := dr.Degradation(); rep != nil {
				out.Degraded = rep.Components()
			}
		}
	}
	var key qorlog.Key
	if opts.Results != nil { // hashing the sources is not free; skip when unused
		key = ResultKey(task.Lib, task.Design, script)
		if rec, ok := opts.Results.Get(key); ok {
			q := qorOf(rec)
			out.QoR = &q
			return &out, nil
		}
		// Budget admission for the synthesis ahead: reject before the lease
		// claim, so a doomed sample never holds fleet-wide work hostage.
		if err := overload.CheckBudget(ctx, overload.StageSynth, opts.Costs.Expect(overload.StageSynth)); err != nil {
			return &out, err
		}
		if ls, ok := opts.Results.(LeasedResultStore); ok {
			rec, done, release := ls.Acquire(ctx, key)
			if done {
				release()
				q := qorOf(rec)
				out.QoR = &q
				return &out, nil
			}
			// We hold the lease (or coordination failed and release is a
			// no-op). Release after the success-path Put publishes the
			// record; on failure the lease lapses with nothing published
			// and siblings recompute — slower, never wrong.
			defer release()
		}
	}
	synthStart := time.Now()
	sess := synth.NewSession(lib)
	sess.Checkpoints = opts.Checkpoints
	sess.AddSource(task.Design.FileName, task.Design.Source)
	run, err := sess.RunContext(ctx, script)
	if err != nil {
		if resilience.IsFatal(err) {
			return &out, err
		}
		out.Err = err.Error()
		return &out, nil
	}
	opts.Costs.Observe(overload.StageSynth, time.Since(synthStart))
	opts.Costs.Observe(overload.StageSample, time.Since(sampleStart))
	out.QoR = run.QoR
	if opts.Results != nil {
		opts.Results.Put(key, recordOf(*run.QoR))
	}
	return &out, nil
}
