package chatls

import (
	"context"
	"fmt"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/resilience"
	"repro/internal/synth"
)

// SampleOutcome records one Pass@k attempt.
type SampleOutcome struct {
	Script string
	QoR    *synth.QoR
	Err    string // non-empty when the script failed in the tool
	// Degraded lists components that fell back during generation of this
	// sample (empty when the pipeline ran at full strength or does not
	// report degradation).
	Degraded []string
}

// EvalResult is the Pass@k outcome for one (pipeline, design) cell of
// Table III.
type EvalResult struct {
	Pipeline   string
	Design     string
	K          int
	Baseline   synth.QoR
	Best       synth.QoR
	BestSample int // -1 when no sample produced a runnable script
	Valid      int
	Samples    []SampleOutcome
}

// Improved reports whether the best customized script beat the baseline on
// timing.
func (r EvalResult) Improved() bool {
	return r.BestSample >= 0 && BetterTiming(r.Best, r.Baseline)
}

// BetterTiming orders QoR the way the evaluation selects the best sample:
// WNS first, then CPS, then smaller area.
func BetterTiming(a, b synth.QoR) bool {
	if a.WNS != b.WNS {
		return a.WNS > b.WNS
	}
	if a.CPS != b.CPS {
		return a.CPS > b.CPS
	}
	return a.Area < b.Area
}

// degradationReporter is implemented by pipelines that record graceful
// degradation (ChatLSPipeline); RunPassK copies the report into the sample.
type degradationReporter interface {
	Degradation() *resilience.DegradationReport
}

// RunPassK evaluates a pipeline on a design with k samples (the paper's
// Pass@5 protocol): each sample's script runs through the synthesis tool;
// scripts that fail (hallucinated commands, bad options) count as invalid;
// the best valid QoR is reported. When every sample fails, the baseline QoR
// stands (the customization attempt is wasted, not destructive).
//
// Per-sample failures are contained — a failed Customize or synthesis run
// records the error in the sample and the remaining samples still run.
// Only context cancellation/timeout aborts the whole evaluation.
func RunPassK(ctx context.Context, p Pipeline, d *designs.Design, k int, lib *liberty.Library) (EvalResult, error) {
	task, baseQoR, err := NewTask(ctx, d, lib)
	if err != nil {
		return EvalResult{}, err
	}
	res := EvalResult{
		Pipeline:   p.Name(),
		Design:     d.Name,
		K:          k,
		Baseline:   baseQoR,
		Best:       baseQoR,
		BestSample: -1,
	}
	for s := 0; s < k; s++ {
		script, err := p.Customize(ctx, task, s)
		if err != nil {
			if resilience.IsFatal(err) {
				return res, err
			}
			res.Samples = append(res.Samples, SampleOutcome{Err: fmt.Sprintf("customize: %v", err)})
			continue
		}
		out := SampleOutcome{Script: script}
		if dr, ok := p.(degradationReporter); ok {
			if rep := dr.Degradation(); rep != nil {
				out.Degraded = rep.Components()
			}
		}
		sess := synth.NewSession(lib)
		sess.AddSource(d.FileName, d.Source)
		run, err := sess.RunContext(ctx, script)
		if err != nil {
			if resilience.IsFatal(err) {
				return res, err
			}
			out.Err = err.Error()
			res.Samples = append(res.Samples, out)
			continue
		}
		res.Valid++
		out.QoR = run.QoR
		res.Samples = append(res.Samples, out)
		if res.BestSample < 0 || BetterTiming(*run.QoR, res.Best) {
			res.Best = *run.QoR
			res.BestSample = s
		}
	}
	return res, nil
}
