package chatls

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/synth"
)

// checkpointCorpus is every design the repo ships with a baseline script:
// the Table IV benchmarks plus the Table II database corpus.
func checkpointCorpus(t *testing.T) []*designs.Design {
	t.Helper()
	all := append(designs.Benchmarks(), designs.DatabaseDesigns()...)
	if testing.Short() {
		return all[:3]
	}
	return all
}

// runBaseline executes a design's script in one session, optionally attached
// to a shared checkpoint store, and canonicalizes the observable output —
// QoR, every report, every written netlist, the transcript — for byte
// comparison.
func runBaseline(t *testing.T, d *designs.Design, store *synth.CheckpointStore, script string) string {
	t.Helper()
	sess := synth.NewSession(liberty.Nangate45())
	sess.Checkpoints = store
	sess.AddSource(d.FileName, d.Source)
	res, err := sess.RunContext(context.Background(), script)
	if err != nil {
		t.Fatalf("%s: %v", d.Name, err)
	}
	b, err := json.Marshal(struct {
		QoR      *synth.QoR
		Reports  []string
		Netlists []string
		Log      []string
	}{res.QoR, res.Reports, res.Netlists, res.Log})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCheckpointEquivalenceCorpus: for every shipped design, a
// checkpoint-restored baseline run emits byte-identical output to a fresh
// run — QoR, reports, written netlist, and transcript. Designs run in
// parallel against one shared store, so under -race this also hammers the
// store's concurrency. The first checkpointed run captures (miss), the
// second restores (hit); both must match the uncheckpointed run exactly.
func TestCheckpointEquivalenceCorpus(t *testing.T) {
	corpus := checkpointCorpus(t)
	store := synth.NewCheckpointStore(len(corpus) + 1)
	for _, d := range corpus {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			script := d.BaselineScript() + "write\n"
			fresh := runBaseline(t, d, nil, script)
			if miss := runBaseline(t, d, store, script); miss != fresh {
				t.Error("capture-path run differs from fresh run")
			}
			if hit := runBaseline(t, d, store, script); hit != fresh {
				t.Error("restored run differs from fresh run")
			}
		})
	}
}

// TestCheckpointRestoreSurvivesMutation: heavyweight netlist mutation on a
// restored design — compile_ultra with retiming, register optimization,
// buffer rebalancing, ungrouping — never perturbs the snapshot later runs
// restore from. Each mutating run and each pristine re-run must keep
// producing its first output byte for byte.
func TestCheckpointRestoreSurvivesMutation(t *testing.T) {
	d := designs.EthMAC()
	store := synth.NewCheckpointStore(2)
	baseline := d.BaselineScript()
	mutating := llm.SpliceScript(baseline, []string{
		"compile_ultra -retime", "optimize_registers", "balance_buffers", "ungroup -all",
	}) + "write\n"

	wantBase := runBaseline(t, d, store, baseline)
	wantMut := runBaseline(t, d, store, mutating)
	for i := 0; i < 3; i++ {
		if got := runBaseline(t, d, store, mutating); got != wantMut {
			t.Fatalf("mutating run %d diverged: the snapshot was perturbed", i)
		}
		if got := runBaseline(t, d, store, baseline); got != wantBase {
			t.Fatalf("baseline run %d diverged after interleaved mutations", i)
		}
	}
	if store.Stats().Hits == 0 {
		t.Fatal("runs never restored from the store")
	}
}
