// Command experiments regenerates every table and figure of the paper's
// evaluation section:
//
//	experiments -table 4     # Table IV: baseline QoR of the benchmarks
//	experiments -table 3     # Table III: GPT-4o vs Claude 3.5 vs ChatLS (Pass@5)
//	experiments -table 2     # Table II: the SynthRAG database corpus
//	experiments -fig 5       # Fig. 5: SynthRAG retrieval F1
//	experiments -ablation    # component ablations
//	experiments -all         # everything
//
// All runs are seeded and deterministic; -seed overrides.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	chatls "repro"
	"repro/internal/designs"
	"repro/internal/qorlog"
	"repro/internal/remotecache"
	"repro/internal/synth"
	"repro/internal/synthrag"
)

func main() {
	table := flag.Int("table", 0, "regenerate a table (2, 3, or 4)")
	fig := flag.Int("fig", 0, "regenerate a figure (5)")
	ablation := flag.Bool("ablation", false, "run the component ablations")
	rerank := flag.Bool("rerank", false, "run the Eq. 5 rerank-weight sweep")
	iterate := flag.Bool("iterate", false, "run the iterative-resynthesis study")
	all := flag.Bool("all", false, "run every experiment")
	seed := flag.Int64("seed", 0, "override the experiment seed")
	k := flag.Int("k", 0, "override Pass@k sample count")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget (0 = unlimited)")
	workers := flag.Int("workers", 1, "concurrent Pass@k sample workers (1 = paper's serial protocol)")
	checkpoints := flag.Bool("checkpoints", true, "share elaboration checkpoints across synthesis runs (results are bit-identical either way)")
	qorLog := flag.String("qor-log", "", "durable QoR log path: sweeps over unchanged inputs are served from it and skip synthesis (empty disables)")
	remoteCache := flag.String("remote-cache", "", "base URL of a shared chatlscached result tier; concurrent replicas dedup synthesis work through it (empty disables)")
	leaseTTL := flag.Duration("lease-ttl", 0, "work-lease TTL requested from the remote cache (0 = server default)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := chatls.DefaultConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *k != 0 {
		cfg.K = *k
	}
	cfg.Workers = *workers
	if *checkpoints {
		cfg.Checkpoints = synth.NewCheckpointStore(0)
	}
	var store *qorlog.Store
	if *qorLog != "" {
		s, err := qorlog.OpenStore(*qorLog, 0, qorlog.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: cannot open QoR log %s, running without it: %v\n", *qorLog, err)
		} else {
			st := s.Stats()
			fmt.Fprintf(os.Stderr, "qor log %s: recovered %d record(s), dropped %d torn/corrupt byte(s)\n",
				*qorLog, st.Recovered, st.DroppedBytes)
			store = s
			cfg.Results = store
			defer func() {
				st := store.Stats()
				fmt.Fprintf(os.Stderr, "qor log: %d hit(s) served without synthesis, %d new record(s) appended\n",
					st.Hits, st.Appends)
				if err := store.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "warning: closing QoR log:", err)
				}
			}()
		}
	}
	if *remoteCache != "" {
		host, _ := os.Hostname()
		rc := remotecache.NewClient(remotecache.ClientConfig{
			BaseURL:  *remoteCache,
			Owner:    fmt.Sprintf("experiments-%s-%d", host, os.Getpid()),
			LeaseTTL: *leaseTTL,
		})
		// The tier layers the remote cache over the local log (which may be
		// absent — a remote-only tier still dedups work fleet-wide).
		tier := remotecache.NewTier(store, rc)
		cfg.Results = tier
		if cfg.Checkpoints != nil {
			cfg.Checkpoints.SetRemote(rc)
		}
		// Registered after the log-close defer above, so this flush runs
		// first: queued publishes reach the tier before the log closes.
		defer func() {
			tier.Close()
			st := rc.Stats()
			fmt.Fprintf(os.Stderr,
				"remote cache: %d QoR hit(s), %d published, %d checkpoint hit(s), %d lease(s) granted, %d sibling wait(s)\n",
				st.QoRHits, st.QoRPuts, st.BlobHits, st.LeasesGranted, st.LeaseWaits)
			if st.Degraded {
				fmt.Fprintln(os.Stderr, "remote cache: tier was lost mid-run; finished local-only")
			}
		}()
	}

	wantTable := func(n int) bool { return *all || *table == n }
	wantFig := func(n int) bool { return *all || *fig == n }

	var db *synthrag.Database
	needDB := wantTable(2) || wantTable(3) || *all || *ablation || *rerank || *iterate
	if needDB {
		fmt.Fprintln(os.Stderr, "building SynthRAG database (expert-draft synthesis)...")
		var err error
		db, err = chatls.BuildDatabase(cfg)
		fatal(err)
	}

	if wantTable(2) {
		fmt.Println(chatls.FormatTable2(chatls.Table2(db)))
	}
	if wantTable(4) {
		rows, err := chatls.Table4(ctx, cfg)
		warnPartial(err)
		fmt.Println(chatls.FormatTable4(rows))
	}
	if wantTable(3) {
		fmt.Fprintln(os.Stderr, "running Table III (3 pipelines x 7 designs x Pass@5)...")
		rows, err := chatls.Table3(ctx, cfg, db)
		warnPartial(err)
		fmt.Println(chatls.FormatTable3(rows))
	}
	if wantFig(5) {
		fmt.Fprintln(os.Stderr, "running Fig. 5 retrieval evaluation...")
		points, err := chatls.Fig5(cfg)
		fatal(err)
		fmt.Println(chatls.FormatFig5(points))
	}
	if *ablation || *all {
		fmt.Fprintln(os.Stderr, "running ablations...")
		rows, err := chatls.Ablations(ctx, cfg, db)
		warnPartial(err)
		fmt.Println(chatls.FormatAblations(rows))
	}
	if *rerank || *all {
		fmt.Fprintln(os.Stderr, "running rerank-weight sweep...")
		points, err := chatls.RerankSweep(cfg, db)
		fatal(err)
		fmt.Println(chatls.FormatRerankSweep(points))
	}
	if *iterate || *all {
		fmt.Fprintln(os.Stderr, "running iterative-resynthesis study...")
		itCfg := cfg
		itCfg.Designs = []*designs.Design{designs.EthMAC(), designs.TinyRocket(), designs.JPEG()}
		rows, err := chatls.IterativeClosure(ctx, itCfg, db, 3)
		warnPartial(err)
		fmt.Println(chatls.FormatIterations(rows))
	}
	if !needDB && !wantTable(4) && !wantFig(5) {
		flag.Usage()
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// warnPartial keeps going when a sweep returned partial results (per-design
// failures) and exits only on any other error, e.g. a timeout.
func warnPartial(err error) {
	if err == nil {
		return
	}
	var sweep chatls.SweepErrors
	if errors.As(err, &sweep) {
		for _, de := range sweep {
			fmt.Fprintln(os.Stderr, "warning: design failed:", de.Error())
		}
		return
	}
	fatal(err)
}
