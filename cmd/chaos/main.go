// Command chaos is the seeded chaos-soak harness for the serving fleet: it
// stands up a real chatlsd server (SkipSynth fixture database, so a full
// soak fits in CI) together with a remote result tier, then drives load
// while injecting the fault classes the fleet claims to survive:
//
//   - burst load far beyond the admission limit,
//   - remote-cache tier death and restart on the same address,
//   - sticky pipeline-stage outages (fail and panic modes) that trip the
//     per-stage circuit breakers,
//   - disk write faults against the durable QoR log,
//   - service-latency spikes that contract the adaptive concurrency limit.
//
// Throughout, it checks the invariants overload protection promises:
//
//  1. no deadlocks — a wall-clock watchdog bounds the whole soak,
//  2. every response is in {200, 429, 503, 504}, and every retryable
//     status carries Retry-After plus a {"error","retryable":true} body,
//  3. non-degraded 200 bodies are byte-identical to a fault-free reference,
//  4. the remote-cache client re-attaches after the tier restarts,
//  5. every tripped circuit breaker re-closes once its stage recovers,
//  6. the adaptive limit re-expands to the ceiling after congestion clears,
//  7. brownout clears and no fleet-wide lease is left active at the end.
//
// Every random choice derives from -seed, which is echoed on failure so a
// red run reproduces exactly.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/qorlog"
	"repro/internal/remotecache"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/synthrag"
)

var seed = flag.Int64("seed", 20250808, "chaos seed: every fault schedule and load pattern derives from it")

// fail aborts the soak, echoing the seed so the failure reproduces.
func fail(format string, args ...any) {
	log.Printf("chaos: FAIL (seed=%d): %s", *seed, fmt.Sprintf(format, args...))
	os.Exit(1)
}

// harness owns the system under soak and the invariant bookkeeping.
type harness struct {
	rng     *rand.Rand
	srv     *server.Server
	ts      *httptest.Server
	client  *http.Client
	inj     *resilience.Injector
	spikeNS atomic.Int64

	tier     *remotecache.Server
	tierAddr string
	tierHTTP *http.Server
	tierMu   sync.Mutex

	bodies []string // request-body pool (valid /v1/customize payloads)
	names  []string // servable design names behind the body pool
	uniq   int64    // monotonic counter for cache-missing probe requests

	mu         sync.Mutex
	refs       map[string][]byte // fault-free reference bodies
	statuses   map[int]int
	compared   int64
	degraded   int64
	protocol   int64 // retryable-protocol checks performed
	identityOK bool
}

// response mirrors the parts of the customize reply the invariants read.
type response struct {
	Degraded []string `json:"degraded"`
	Samples  []struct {
		Error    string   `json:"error"`
		Degraded []string `json:"degraded"`
	} `json:"samples"`
}

type errorBody struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable"`
}

// isDegraded reports whether any part of a 200 reply ran at reduced
// strength (brownout, skipped stage, failed sample) — such replies are
// legitimately different from the fault-free reference.
func isDegraded(body []byte) bool {
	var r response
	if err := json.Unmarshal(body, &r); err != nil {
		return true // unparseable counts as degraded, never as reference
	}
	if len(r.Degraded) > 0 {
		return true
	}
	for _, s := range r.Samples {
		if s.Error != "" || len(s.Degraded) > 0 {
			return true
		}
	}
	return false
}

// do issues one request and checks the per-response invariants: allowed
// status set, retryable protocol on 429/503/504, and byte-identity of
// non-degraded 200s against the fault-free reference.
func (h *harness) do(body string) int {
	resp, err := h.client.Post(h.ts.URL+"/v1/customize", "application/json", strings.NewReader(body))
	if err != nil {
		fail("request error (client timeout is the deadlock tripwire): %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fail("read response body: %v", err)
	}

	h.mu.Lock()
	h.statuses[resp.StatusCode]++
	h.mu.Unlock()

	switch resp.StatusCode {
	case http.StatusOK:
		if isDegraded(b) {
			atomic.AddInt64(&h.degraded, 1)
			break
		}
		h.mu.Lock()
		ref, ok := h.refs[body]
		if ok && !bytes.Equal(ref, b) {
			h.identityOK = false
			h.mu.Unlock()
			fail("non-degraded 200 for %s diverged from the fault-free reference:\nref: %s\ngot: %s", body, ref, b)
		}
		h.compared++
		h.mu.Unlock()
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		if resp.Header.Get("Retry-After") == "" {
			fail("status %d without a Retry-After header", resp.StatusCode)
		}
		var eb errorBody
		if err := json.Unmarshal(b, &eb); err != nil || !eb.Retryable || eb.Error == "" {
			fail("status %d body %q is not a retryable error body", resp.StatusCode, b)
		}
		atomic.AddInt64(&h.protocol, 1)
	default:
		fail("unexpected status %d for %s: %s", resp.StatusCode, body, b)
	}
	return resp.StatusCode
}

// healthz decodes the daemon's overload state.
type overloadState struct {
	Limit    int               `json:"limit"`
	Ceiling  int               `json:"ceiling"`
	Shed     int64             `json:"shed_total"`
	Brownout bool              `json:"brownout"`
	Breakers map[string]string `json:"breakers"`
}

func (h *harness) overload() overloadState {
	resp, err := h.client.Get(h.ts.URL + "/healthz")
	if err != nil {
		fail("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var hz struct {
		Overload overloadState `json:"overload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		fail("decode /healthz: %v", err)
	}
	return hz.Overload
}

// tierMetric scrapes one value off the remote tier's /metrics.
func (h *harness) tierMetric(name string) float64 {
	resp, err := h.client.Get("http://" + h.tierAddr + "/metrics")
	if err != nil {
		fail("GET tier /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				fail("parse tier metric %s=%q: %v", name, rest, err)
			}
			return v
		}
	}
	fail("tier metric %s not found", name)
	return 0
}

// uniqueBody returns a request no prior request matches: it misses every
// cache, so the full pipeline runs and the remote tier is actually
// consulted (a warm body is served locally and never probes the tier).
func (h *harness) uniqueBody() string {
	n := atomic.AddInt64(&h.uniq, 1)
	return fmt.Sprintf(`{"design":%q,"k":1,"requirement":"soak probe variant %d"}`,
		h.names[int(n)%len(h.names)], n)
}

// waitUnderLoad drives light traffic until cond holds or the deadline
// passes — recovery conditions (breaker probes, limiter re-expansion) only
// make progress while requests flow. Traffic alternates warm bodies with
// unique cache-missing ones so both the admission path and the remote tier
// see probes.
func (h *harness) waitUnderLoad(d time.Duration, what string, cond func() bool) {
	deadline := time.Now().Add(d)
	for i := 0; time.Now().Before(deadline); i++ {
		if i%2 == 0 {
			h.do(h.bodies[h.rng.Intn(len(h.bodies))])
		} else {
			h.do(h.uniqueBody())
		}
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	fail("%s did not hold within %v", what, d)
}

// waitCalm is waitUnderLoad with warm cache-hitting traffic only: a
// homogeneous latency stream, which is what "congestion cleared" means to
// the AIMD limiter (mixed cold/warm traffic is legitimately read as
// congestion and would hold the limit down).
func (h *harness) waitCalm(d time.Duration, what string, cond func() bool) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		h.do(h.bodies[h.rng.Intn(len(h.bodies))])
		if cond() {
			return
		}
	}
	fail("%s did not hold within %v", what, d)
}

// startTier (re)binds the remote tier's HTTP server on its address.
func (h *harness) startTier() {
	h.tierMu.Lock()
	defer h.tierMu.Unlock()
	addr := h.tierAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail("bind tier on %q: %v", addr, err)
	}
	h.tierAddr = ln.Addr().String()
	h.tierHTTP = &http.Server{Handler: h.tier.Handler()}
	go h.tierHTTP.Serve(ln)
}

func (h *harness) stopTier() {
	h.tierMu.Lock()
	defer h.tierMu.Unlock()
	h.tierHTTP.Close()
}

func main() {
	flag.Parse()
	log.SetFlags(0)
	start := time.Now()

	// Invariant 1: the watchdog is the deadlock tripwire. Nothing in the
	// soak may block past it.
	const wallClock = 120 * time.Second
	watchdog := time.AfterFunc(wallClock, func() {
		fail("watchdog: soak exceeded %v — possible deadlock", wallClock)
	})
	defer watchdog.Stop()

	h := &harness{
		rng:        rand.New(rand.NewSource(*seed)),
		client:     &http.Client{Timeout: 30 * time.Second},
		refs:       make(map[string][]byte),
		statuses:   make(map[int]int),
		identityOK: true,
		inj:        resilience.NewInjector(),
	}

	// --- assemble the system under soak -------------------------------
	lib := liberty.Nangate45()
	db, err := synthrag.Build(synthrag.BuildConfig{Seed: *seed, SkipSynth: true, Lib: lib})
	if err != nil {
		fail("build database: %v", err)
	}

	h.tier = remotecache.NewServer(remotecache.ServerConfig{
		QoR:      qorlog.NewMemoryStore(0),
		LeaseTTL: 2 * time.Second, // abandoned leases must lapse within the soak
	})
	defer h.tier.Close()
	h.startTier()
	rc := remotecache.NewClient(remotecache.ClientConfig{
		BaseURL: "http://" + h.tierAddr,
		Owner:   "chaos-replica",
		Timeout: 500 * time.Millisecond,
		Breaker: resilience.BreakerConfig{OpenFor: 200 * time.Millisecond},
	})

	// Disk faults ride along passively: a seeded schedule of failed and
	// torn QoR-log writes spread over the soak. The store must degrade or
	// recover without ever corrupting served results.
	diskCalls := make([]int, 0, 12)
	for _, n := range h.rng.Perm(300)[:12] {
		diskCalls = append(diskCalls, n+10)
	}
	sort.Ints(diskCalls)
	diskInj := resilience.NewDiskInjector(
		resilience.DiskFault{Op: resilience.DiskWrite, Mode: resilience.DiskShort, Calls: diskCalls[:6]},
		resilience.DiskFault{Op: resilience.DiskWrite, Mode: resilience.DiskFail, Calls: diskCalls[6:]},
	)

	qorPath := fmt.Sprintf("%s/chaos-qor.log", os.TempDir())
	os.Remove(qorPath)
	defer os.Remove(qorPath)

	srv, err := server.New(server.Config{
		Model:           llm.New(llm.GPT4o, *seed),
		DB:              db,
		Lib:             lib,
		Seed:            *seed,
		Workers:         4,
		QueueDepth:      8,
		RequestTimeout:  2 * time.Second,
		BreakerFailures: 2,
		BreakerOpenFor:  300 * time.Millisecond,
		DefaultK:        1,
		QoRLogPath:      qorPath,
		QoRLogOpts:      qorlog.Options{Inject: diskInj},
		RemoteCache:     rc,
		PipelineInject:  h.inj,
		BeforeWork: func() {
			if d := h.spikeNS.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		},
	})
	if err != nil {
		fail("server.New: %v", err)
	}
	h.srv = srv
	h.ts = httptest.NewServer(srv.Handler())
	defer h.ts.Close()

	names := make([]string, 0, 3)
	for _, d := range designs.Benchmarks() {
		names = append(names, d.Name)
		if len(names) == 3 {
			break
		}
	}
	h.names = names
	for _, n := range names {
		h.bodies = append(h.bodies,
			fmt.Sprintf(`{"design":%q,"k":1}`, n),
			fmt.Sprintf(`{"design":%q,"k":2}`, n))
	}

	ceiling := h.overload().Ceiling

	// --- phase 0: fault-free warmup builds the byte-identity reference
	// and primes the limiter's latency baseline and the cost model.
	log.Printf("chaos: seed=%d phase=warmup", *seed)
	for _, body := range h.bodies {
		resp, err := h.client.Post(h.ts.URL+"/v1/customize", "application/json", strings.NewReader(body))
		if err != nil {
			fail("warmup request: %v", err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("warmup for %s: status %d: %s", body, resp.StatusCode, b)
		}
		if isDegraded(b) {
			fail("warmup response for %s degraded with no faults active: %s", body, b)
		}
		h.refs[body] = b
	}
	for i := 0; i < 80; i++ { // prime the p50 baseline with calm completions
		h.do(h.bodies[h.rng.Intn(len(h.bodies))])
	}

	// --- phase 1: burst load beyond the admission limit ----------------
	log.Printf("chaos: seed=%d phase=burst", *seed)
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for i := 0; i < 25; i++ {
				if rng.Intn(4) == 0 {
					// Unique requirements defeat singleflight so the burst
					// exerts real admission pressure.
					h.do(fmt.Sprintf(`{"design":%q,"k":1,"requirement":"soak timing variant %d-%d"}`,
						names[rng.Intn(len(names))], w, i))
				} else {
					h.do(h.bodies[rng.Intn(len(h.bodies))])
				}
			}
		}(w)
	}
	wg.Wait()

	// --- phase 2: remote tier dies mid-run, then restarts --------------
	log.Printf("chaos: seed=%d phase=tier-outage", *seed)
	h.stopTier()
	h.waitUnderLoad(10*time.Second, "remotecache breaker open after tier death", func() bool {
		return h.overload().Breakers["remotecache"] == "open"
	})
	h.startTier() // same address: the breaker's half-open probe re-attaches
	h.waitUnderLoad(10*time.Second, "remotecache breaker re-closed after tier restart", func() bool {
		return h.overload().Breakers["remotecache"] == "closed" && !rc.Degraded()
	})

	// --- phase 3: sticky stage outages trip and clear breakers ---------
	log.Printf("chaos: seed=%d phase=stage-outage", *seed)
	stageModes := []resilience.Mode{resilience.ModeFail, resilience.ModePanic}
	for i, comp := range []string{resilience.CompMentor, resilience.CompExpert} {
		mode := stageModes[(i+h.rng.Intn(2))%2]
		h.inj.Set(comp, mode)
		h.waitUnderLoad(10*time.Second, comp+" breaker open under injected "+mode.String(), func() bool {
			return h.overload().Breakers[comp] == "open"
		})
		h.inj.Set(comp, 0)
		h.waitUnderLoad(10*time.Second, comp+" breaker re-closed after recovery", func() bool {
			return h.overload().Breakers[comp] == "closed"
		})
	}

	// --- phase 4: latency spike contracts the adaptive limit -----------
	// The limit must at least halve under a sustained 150ms spike and
	// climb back to >= 3/4 of the ceiling once the spike clears (the last
	// quarter is noise-sensitive at millisecond baselines: one straggler
	// completion costs a multiplicative decrease).
	log.Printf("chaos: seed=%d phase=latency-spike", *seed)
	contracted := ceiling / 2
	h.spikeNS.Store(int64(150 * time.Millisecond))
	spikeDeadline := time.Now().Add(20 * time.Second)
	var spikeWG sync.WaitGroup
	for w := 0; w < 8; w++ { // enough concurrency to keep completions flowing
		spikeWG.Add(1)
		go func(w int) {
			defer spikeWG.Done()
			rng := rand.New(rand.NewSource(*seed ^ int64(w)))
			for time.Now().Before(spikeDeadline) {
				h.do(h.bodies[rng.Intn(len(h.bodies))])
				if h.overload().Limit <= contracted {
					return
				}
			}
		}(w)
	}
	spikeWG.Wait()
	if got := h.overload().Limit; got > contracted {
		fail("limiter never contracted under a 150ms latency spike (limit=%d ceiling=%d)", got, ceiling)
	}
	h.spikeNS.Store(0)
	recovered := (ceiling*3 + 3) / 4
	h.waitCalm(25*time.Second, fmt.Sprintf("limiter re-expanded to >= %d/%d", recovered, ceiling), func() bool {
		return h.overload().Limit >= recovered
	})

	// --- final invariants ----------------------------------------------
	log.Printf("chaos: seed=%d phase=drain", *seed)
	h.waitUnderLoad(10*time.Second, "brownout cleared and all breakers closed", func() bool {
		o := h.overload()
		if o.Brownout {
			return false
		}
		for _, st := range o.Breakers {
			if st != "closed" {
				return false
			}
		}
		return true
	})
	// No lost leases: abandoned leases must have lapsed (2s TTL) and none
	// may still be active once traffic stops.
	leaseDeadline := time.Now().Add(10 * time.Second)
	for h.tierMetric("remotecache_leases_active") != 0 {
		if time.Now().After(leaseDeadline) {
			fail("remote tier still holds %v active lease(s) after the soak",
				h.tierMetric("remotecache_leases_active"))
		}
		time.Sleep(100 * time.Millisecond)
	}

	final := h.overload() // snapshot before shutdown flips healthz to 503

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fail("graceful shutdown overran its deadline: %v", err)
	}
	h.mu.Lock()
	var keys []int
	for k := range h.statuses {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var parts []string
	var total int
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d:%d", k, h.statuses[k]))
		total += h.statuses[k]
	}
	h.mu.Unlock()
	log.Printf("chaos: %d requests (%s), %d byte-identity checks, %d degraded replies, %d retryable-protocol checks, %d sheds, final limit %d/%d",
		total, strings.Join(parts, " "), h.compared, h.degraded, h.protocol, final.Shed, final.Limit, final.Ceiling)
	log.Printf("chaos: PASS (seed=%d) in %v", *seed, time.Since(start).Round(time.Millisecond))
}
