// Command chatlsd serves the ChatLS pipeline over HTTP: build the SynthRAG
// database once, then answer script-customization requests concurrently
// with caching, admission control, and metrics.
//
//	chatlsd -addr :8080
//	curl -s localhost:8080/v1/designs
//	curl -s -X POST localhost:8080/v1/customize \
//	    -d '{"design":"riscv32i","k":2}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM triggers a graceful shutdown: new requests are refused
// while in-flight and queued work drains, then the durable QoR log (if
// -qor-log is set) is flushed and closed so completed results survive the
// restart. A restarted daemon warm-fills its result cache from that log.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	chatls "repro"
	"repro/internal/inputlimits"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/remotecache"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 20250706, "generation seed")
	epochs := flag.Int("epochs", 40, "metric-learning epochs for the database build")
	workers := flag.Int("workers", 2, "worker-pool size")
	queue := flag.Int("queue", 8, "admission-control queue depth")
	reqTimeout := flag.Duration("req-timeout", 60*time.Second, "per-request deadline")
	inflightFloor := flag.Int("max-inflight-floor", 0, "adaptive concurrency limit floor (0 = default 1)")
	inflightCeiling := flag.Int("max-inflight-ceiling", 0, "adaptive concurrency limit ceiling (0 = workers+queue)")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive failures that trip a stage circuit breaker (0 = default 5)")
	breakerOpenFor := flag.Duration("breaker-open-for", 0, "circuit-breaker open dwell before half-open probes (0 = default 5s)")
	breakerProbes := flag.Int("breaker-probes", 0, "concurrent half-open probe budget per breaker (0 = default 1)")
	brownout := flag.Bool("brownout", true, "degrade (clamp Pass@k to 1) instead of failing under sustained overload")
	taskCache := flag.Int("task-cache", 16, "baseline-task cache entries")
	embedCache := flag.Int("embed-cache", 64, "design-embedding cache entries")
	retrieveCache := flag.Int("retrieve-cache", 256, "strategy-retrieval cache entries")
	batchWindow := flag.Duration("batch-window", 0, "embedding admission-queue wait window (0 = default, negative disables batching)")
	batchMax := flag.Int("batch-max", 0, "embedding requests per coalesced batch before an early flush (0 = default)")
	hnswEf := flag.Int("hnsw-ef", 0, "HNSW search beam width for indexes past the corpus-size threshold (0 = index default)")
	checkpointCap := flag.Int("checkpoint-cap", 0, "elaboration-checkpoint store entries (0 = default, negative disables)")
	qorLog := flag.String("qor-log", "", "durable QoR log path: synthesis outcomes persist across restarts (empty disables)")
	qorCache := flag.Int("qor-cache", 0, "in-memory QoR record cache entries in front of the log (0 = default)")
	remoteCache := flag.String("remote-cache", "", "base URL of a shared chatlscached result tier, e.g. http://cache:8090 (empty disables)")
	leaseTTL := flag.Duration("lease-ttl", 0, "fleet-wide work-lease TTL requested from the remote cache (0 = server default)")
	defaultK := flag.Int("k", 1, "default Pass@k samples per request")
	maxK := flag.Int("max-k", 10, "largest k a request may ask for")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
	maxBody := flag.Int64("max-body-bytes", 1<<20, "largest accepted /v1/customize request body (413 beyond)")
	maxReqLen := flag.Int("max-requirement-len", 8<<10, "largest accepted requirement string (422 beyond)")
	budgetScale := flag.Float64("parse-budget-scale", 1.0, "multiply every parser input budget by this factor (0 disables all parser limits)")
	verilogBytes := flag.Int("parse-verilog-max-bytes", 0, "override the Verilog parser byte budget (0 = keep default)")
	libertyBytes := flag.Int("parse-liberty-max-bytes", 0, "override the Liberty parser byte budget (0 = keep default)")
	scriptBytes := flag.Int("parse-script-max-bytes", 0, "override the script parser byte budget (0 = keep default)")
	cypherBytes := flag.Int("parse-cypher-max-bytes", 0, "override the Cypher parser byte budget (0 = keep default)")
	flag.Parse()

	// Parser budgets are process-global; install overrides before any
	// request (or the database build below) parses a byte. The effective
	// values are echoed on /healthz.
	limits := inputlimits.Defaults()
	if *budgetScale != 1.0 {
		for _, b := range []*inputlimits.Budget{&limits.Verilog, &limits.Liberty, &limits.Script, &limits.Cypher} {
			b.MaxBytes = int(float64(b.MaxBytes) * *budgetScale)
			b.MaxTokens = int(float64(b.MaxTokens) * *budgetScale)
			b.MaxDepth = int(float64(b.MaxDepth) * *budgetScale)
			b.MaxStatements = int(float64(b.MaxStatements) * *budgetScale)
			b.MaxSteps = int(float64(b.MaxSteps) * *budgetScale)
		}
	}
	if *verilogBytes > 0 {
		limits.Verilog.MaxBytes = *verilogBytes
	}
	if *libertyBytes > 0 {
		limits.Liberty.MaxBytes = *libertyBytes
	}
	if *scriptBytes > 0 {
		limits.Script.MaxBytes = *scriptBytes
	}
	if *cypherBytes > 0 {
		limits.Cypher.MaxBytes = *cypherBytes
	}
	inputlimits.SetDefaults(limits)

	lib := liberty.Nangate45()
	log.Println("building SynthRAG database...")
	db, err := chatls.BuildDatabase(chatls.ExperimentConfig{Seed: *seed, TrainEpochs: *epochs, Lib: lib})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	var rc *remotecache.Client
	if *remoteCache != "" {
		host, _ := os.Hostname()
		rc = remotecache.NewClient(remotecache.ClientConfig{
			BaseURL:  *remoteCache,
			Owner:    fmt.Sprintf("chatlsd-%s-%d", host, os.Getpid()),
			LeaseTTL: *leaseTTL,
		})
		log.Printf("remote result tier: %s (replica falls back to local-only if it dies)", *remoteCache)
	}

	srv, err := server.New(server.Config{
		Model:             llm.New(llm.GPT4o, *seed),
		DB:                db,
		Lib:               lib,
		Seed:              *seed,
		Workers:           *workers,
		QueueDepth:        *queue,
		RequestTimeout:    *reqTimeout,
		InflightFloor:     *inflightFloor,
		InflightCeiling:   *inflightCeiling,
		BreakerFailures:   *breakerFailures,
		BreakerOpenFor:    *breakerOpenFor,
		BreakerProbes:     *breakerProbes,
		DisableBrownout:   !*brownout,
		TaskCacheSize:     *taskCache,
		EmbedCacheSize:    *embedCache,
		RetrieveCacheSize: *retrieveCache,
		BatchWindow:       *batchWindow,
		BatchMax:          *batchMax,
		DisableBatching:   *batchWindow < 0,
		HNSWEf:            *hnswEf,
		CheckpointCap:     *checkpointCap,
		QoRLogPath:        *qorLog,
		QoRCacheSize:      *qorCache,
		RemoteCache:       rc,
		DefaultK:          *defaultK,
		MaxK:              *maxK,
		MaxBodyBytes:      *maxBody,
		MaxRequirementLen: *maxReqLen,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *qorLog != "" {
		st := srv.QoRStats()
		log.Printf("qor log %s: recovered %d record(s), warm-filled %d, dropped %d torn/corrupt byte(s)",
			*qorLog, st.Recovered, st.Warmed, st.DroppedBytes)
	}

	handler := srv.Handler()
	if *pprofOn {
		// Profiling is opt-in: the endpoints expose internals and add
		// overhead, so they never ride along on a default deployment.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Println("pprof profiling enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Println("shutting down: draining in-flight work...")
		ctx, cancel := context.WithTimeout(context.Background(), 2*(*reqTimeout))
		defer cancel()
		httpSrv.Shutdown(ctx)
		// Drain the worker pool under the same deadline, then flush and
		// close the QoR log so every completed result survives the restart.
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v (abandoning remaining work)", err)
		}
	}()

	log.Printf("chatlsd listening on %s (%d workers, queue %d)", *addr, *workers, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	<-done
	log.Println("chatlsd stopped")
}
