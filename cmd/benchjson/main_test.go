package main

import (
	"strings"
	"testing"
)

func TestParseAveragesAndStripsProcs(t *testing.T) {
	in := `goos: linux
BenchmarkTable4Baseline-8   	       1	100000000 ns/op	50000000 B/op	  500000 allocs/op
BenchmarkTable4Baseline-8   	       1	300000000 ns/op	70000000 B/op	  700000 allocs/op
BenchmarkMatMul/64x64-8     	    1000	     12345 ns/op
PASS
ok  	repro	1.234s
`
	accums, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sum := summarize(accums)
	r, ok := sum["BenchmarkTable4Baseline"]
	if !ok {
		t.Fatalf("missing BenchmarkTable4Baseline; got %v", sum)
	}
	if r.Runs != 2 || r.NsPerOp != 200000000 || r.BPerOp != 60000000 || r.AllocsPerOp != 600000 {
		t.Errorf("Table4Baseline = %+v", r)
	}
	m, ok := sum["BenchmarkMatMul/64x64"]
	if !ok {
		t.Fatalf("missing BenchmarkMatMul/64x64; got %v", sum)
	}
	if m.Runs != 1 || m.NsPerOp != 12345 || m.BPerOp != 0 {
		t.Errorf("MatMul = %+v", m)
	}
}

func TestParseCapturesCustomUnits(t *testing.T) {
	in := `BenchmarkHNSWSearch10k-8	5000	  210000 ns/op	      0.980 recall	   340 hops/op
BenchmarkHNSWSearch10k-8	5000	  190000 ns/op	      0.990 recall	   360 hops/op
BenchmarkEmbedBatched-8 	 100	 1000000 ns/op	       2.50 speedup
`
	accums, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sum := summarize(accums)
	h := sum["BenchmarkHNSWSearch10k"]
	if h.Runs != 2 || h.NsPerOp != 200000 {
		t.Errorf("HNSWSearch10k = %+v", h)
	}
	if h.Custom["recall"] != 0.985 || h.Custom["hops/op"] != 350 {
		t.Errorf("custom units = %v, want recall 0.985 hops/op 350", h.Custom)
	}
	if s := sum["BenchmarkEmbedBatched"].Custom["speedup"]; s != 2.5 {
		t.Errorf("speedup = %v, want 2.5", s)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo/a-b-16": "BenchmarkFoo/a-b",
		"BenchmarkFoo/a-b":    "BenchmarkFoo/a-b", // non-numeric suffix stays
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
