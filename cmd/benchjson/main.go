// Command benchjson converts `go test -bench` output into a stable JSON
// summary for checked-in benchmark records and CI comparison:
//
//	go test -run='^$' -bench 'Table4' -benchmem -count=5 . | benchjson > BENCH.json
//
// Each benchmark name maps to the mean of its ns/op, B/op, and allocs/op
// across the -count repetitions, plus the repetition count. The GOMAXPROCS
// suffix go appends to parallel-capable benchmarks (Name-8) is stripped so
// records diff cleanly across machines with different core counts.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurements. Custom holds the mean
// of every b.ReportMetric unit the benchmark emitted (speedup ratios,
// recall, hops/op, ...) keyed by unit name.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Custom      map[string]float64 `json:"custom,omitempty"`
	Runs        int                `json:"runs"`
}

type accum struct {
	ns, b, allocs float64
	custom        map[string]float64
	hasMem        bool
	runs          int
}

// stripProcs removes the trailing -N GOMAXPROCS suffix from a benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse aggregates benchmark lines from r. Non-benchmark lines (the ok/PASS
// trailer, build output) are ignored.
func parse(r io.Reader) (map[string]*accum, error) {
	out := map[string]*accum{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		a := out[name]
		if a == nil {
			a = &accum{}
			out[name] = a
		}
		a.runs++
		// fields[1] is the iteration count; the rest are "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				a.ns += v
			case "B/op":
				a.b += v
				a.hasMem = true
			case "allocs/op":
				a.allocs += v
				a.hasMem = true
			default:
				if a.custom == nil {
					a.custom = make(map[string]float64)
				}
				a.custom[fields[i+1]] += v
			}
		}
	}
	return out, sc.Err()
}

func summarize(accums map[string]*accum) map[string]Result {
	out := make(map[string]Result, len(accums))
	for name, a := range accums {
		n := float64(a.runs)
		res := Result{NsPerOp: a.ns / n, Runs: a.runs}
		if a.hasMem {
			res.BPerOp = a.b / n
			res.AllocsPerOp = a.allocs / n
		}
		if len(a.custom) > 0 {
			res.Custom = make(map[string]float64, len(a.custom))
			for unit, sum := range a.custom {
				res.Custom[unit] = sum / n
			}
		}
		out[name] = res
	}
	return out
}

func main() {
	accums, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(accums) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	// Marshal through an ordered structure: encoding/json sorts map keys,
	// but be explicit so the record is stable for diffing.
	names := make([]string, 0, len(accums))
	for n := range accums {
		names = append(names, n)
	}
	sort.Strings(names)
	summary := summarize(accums)
	ordered := make(map[string]Result, len(names))
	for _, n := range names {
		ordered[n] = summary[n]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ordered); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
