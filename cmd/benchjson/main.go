// Command benchjson converts `go test -bench` output into a stable JSON
// summary for checked-in benchmark records and CI comparison:
//
//	go test -run='^$' -bench 'Table4' -benchmem -count=5 . | benchjson > BENCH.json
//
// Each benchmark name maps to the mean of its ns/op, B/op, and allocs/op
// across the -count repetitions, plus the repetition count. The GOMAXPROCS
// suffix go appends to parallel-capable benchmarks (Name-8) is stripped so
// records diff cleanly across machines with different core counts.
//
// With -baseline, benchjson additionally gates on allocation regressions:
// every benchmark present in both the baseline record and the new run is
// compared on allocs/op, and any regression beyond -threshold percent fails
// the run (exit 1) with a per-benchmark report on stderr. Allocation counts
// are deterministic — unlike ns/op they do not wobble with machine load —
// so the gate is reliable at tight thresholds.
//
//	... | benchjson -baseline BENCH_6.json -threshold 20 > /dev/null
//
// With -drive, benchjson runs `go test -bench` itself instead of reading
// stdin, which is the hook for heap profiling a benchmark:
//
//	benchjson -drive 'CompileUltraSwerv$' -pkg . -memprofile mem.out > /dev/null
//	go tool pprof -alloc_objects mem.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurements. Custom holds the mean
// of every b.ReportMetric unit the benchmark emitted (speedup ratios,
// recall, hops/op, ...) keyed by unit name.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Custom      map[string]float64 `json:"custom,omitempty"`
	Runs        int                `json:"runs"`
}

type accum struct {
	ns, b, allocs float64
	custom        map[string]float64
	hasMem        bool
	runs          int
}

// stripProcs removes the trailing -N GOMAXPROCS suffix from a benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse aggregates benchmark lines from r. Non-benchmark lines (the ok/PASS
// trailer, build output) are ignored.
func parse(r io.Reader) (map[string]*accum, error) {
	out := map[string]*accum{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		a := out[name]
		if a == nil {
			a = &accum{}
			out[name] = a
		}
		a.runs++
		// fields[1] is the iteration count; the rest are "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				a.ns += v
			case "B/op":
				a.b += v
				a.hasMem = true
			case "allocs/op":
				a.allocs += v
				a.hasMem = true
			default:
				if a.custom == nil {
					a.custom = make(map[string]float64)
				}
				a.custom[fields[i+1]] += v
			}
		}
	}
	return out, sc.Err()
}

func summarize(accums map[string]*accum) map[string]Result {
	out := make(map[string]Result, len(accums))
	for name, a := range accums {
		n := float64(a.runs)
		res := Result{NsPerOp: a.ns / n, Runs: a.runs}
		if a.hasMem {
			res.BPerOp = a.b / n
			res.AllocsPerOp = a.allocs / n
		}
		if len(a.custom) > 0 {
			res.Custom = make(map[string]float64, len(a.custom))
			for unit, sum := range a.custom {
				res.Custom[unit] = sum / n
			}
		}
		out[name] = res
	}
	return out
}

// gate compares allocs/op of every benchmark present in both records and
// returns the violations: current > baseline * (1 + threshold/100).
func gate(baseline, current map[string]Result, thresholdPct float64) []string {
	var bad []string
	names := make([]string, 0, len(current))
	for n := range current {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		base, ok := baseline[n]
		if !ok || base.AllocsPerOp <= 0 {
			continue
		}
		cur := current[n]
		limit := base.AllocsPerOp * (1 + thresholdPct/100)
		if cur.AllocsPerOp > limit {
			bad = append(bad, fmt.Sprintf(
				"%s: allocs/op %.1f exceeds baseline %.1f by more than %.0f%% (limit %.1f)",
				n, cur.AllocsPerOp, base.AllocsPerOp, thresholdPct, limit))
		}
	}
	return bad
}

// drive runs `go test -bench` for the given pattern and returns its combined
// output, forwarding a copy to stderr so failures stay visible.
func drive(pattern, pkg, memprofile string, count int) ([]byte, error) {
	args := []string{"test", "-run=^$", "-bench=" + pattern, "-benchmem",
		"-benchtime=1x", "-count=" + strconv.Itoa(count)}
	if memprofile != "" {
		args = append(args, "-memprofile="+memprofile)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	return cmd.Output()
}

func fail(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"benchjson:"}, args...)...)
	os.Exit(1)
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline JSON record; fail if allocs/op regresses past -threshold")
		threshold    = flag.Float64("threshold", 20, "allowed allocs/op regression over baseline, percent")
		drivePattern = flag.String("drive", "", "run `go test -bench` with this pattern instead of reading stdin")
		pkg          = flag.String("pkg", ".", "package argument for -drive")
		memprofile   = flag.String("memprofile", "", "with -drive: write the benchmark heap profile here (inspect with go tool pprof)")
		count        = flag.Int("count", 1, "with -drive: -count repetitions")
	)
	flag.Parse()

	input := io.Reader(os.Stdin)
	if *drivePattern != "" {
		out, err := drive(*drivePattern, *pkg, *memprofile, *count)
		if err != nil {
			fail("drive:", err)
		}
		input = strings.NewReader(string(out))
	}

	accums, err := parse(input)
	if err != nil {
		fail(err)
	}
	if len(accums) == 0 {
		fail("no benchmark lines on input")
	}
	// Marshal through an ordered structure: encoding/json sorts map keys,
	// but be explicit so the record is stable for diffing.
	names := make([]string, 0, len(accums))
	for n := range accums {
		names = append(names, n)
	}
	sort.Strings(names)
	summary := summarize(accums)
	ordered := make(map[string]Result, len(names))
	for _, n := range names {
		ordered[n] = summary[n]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ordered); err != nil {
		fail(err)
	}

	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fail("baseline:", err)
		}
		var baseline map[string]Result
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fail("baseline:", err)
		}
		if bad := gate(baseline, summary, *threshold); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintln(os.Stderr, "benchjson: ALLOC REGRESSION:", line)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: alloc gate passed (%d benchmarks vs %s, +%.0f%% allowed)\n",
			len(summary), *baselinePath, *threshold)
	}
}
