// Command calibrate prints the QoR of every Table IV benchmark under the
// baseline script and a palette of candidate customizations. It exists to
// verify (and tune) that each design's structural traits make the intended
// commands profitable — the mechanical precondition for the Table III
// reproduction.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/synth"
)

func main() {
	only := flag.String("design", "", "limit to one design")
	flag.Parse()

	variants := []struct {
		name string
		cust func(d *designs.Design) string
	}{
		{"baseline", func(d *designs.Design) string { return d.BaselineScript() }},
		{"high", withCompile("compile -map_effort high")},
		{"ultra", withCompile("compile_ultra")},
		{"ultra+retime", withCompile("compile_ultra -retime")},
		{"ultra+retime+theff", withCompile("compile_ultra -retime -timing_high_effort_script")},
		{"ultra+areaheff", withCompile("compile_ultra -area_high_effort_script")},
		{"medium+buffers", withCompile("set_max_fanout 16 [current_design]\ncompile\nbalance_buffers")},
		{"ultra+buffers", withCompile("set_max_fanout 16 [current_design]\ncompile_ultra\nbalance_buffers")},
		{"noungroup", withCompile("compile_ultra -no_autoungroup")},
	}

	for _, d := range designs.Benchmarks() {
		if *only != "" && d.Name != *only {
			continue
		}
		fmt.Printf("== %s (period %.2f)\n", d.Name, d.Period)
		for _, v := range variants {
			sess := synth.NewSession(liberty.Nangate45())
			sess.AddSource(d.FileName, d.Source)
			script := v.cust(d)
			res, err := sess.Run(script)
			if err != nil {
				fmt.Printf("  %-20s ERROR: %v\n", v.name, err)
				continue
			}
			q := res.QoR
			fmt.Printf("  %-20s WNS %8.3f CPS %8.3f TNS %9.2f area %10.2f cells %6d\n",
				v.name, q.WNS, q.CPS, q.TNS, q.Area, q.Cells)
		}
	}
	_ = os.Stdout
}

// withCompile returns a script builder replacing the baseline compile line.
func withCompile(compileCmds string) func(d *designs.Design) string {
	return func(d *designs.Design) string {
		base := d.BaselineScript()
		lines := strings.Split(base, "\n")
		var out []string
		for _, l := range lines {
			if strings.HasPrefix(strings.TrimSpace(l), "compile") {
				out = append(out, compileCmds)
				continue
			}
			out = append(out, l)
		}
		return strings.Join(out, "\n")
	}
}
