// Command chatlscached serves the shared result tier for a fleet of chatlsd
// replicas (and cmd/experiments runs): content-addressed QoR records,
// content-addressed elaboration checkpoints, and the lease scheduler that
// dedups Pass@k sample synthesis fleet-wide.
//
//	chatlscached -addr :8090 -qor-log /var/lib/chatls/qor.log \
//	    -blob-dir /var/lib/chatls/blobs
//	chatlsd -addr :8080 -remote-cache http://localhost:8090
//
// The tier is an accelerator, never a correctness dependency: replicas that
// lose it degrade to local-only operation and produce bit-identical results,
// just slower. QoR records ride the same durable log format as a replica's
// local -qor-log, so the tier survives its own restarts the same way.
//
// SIGINT/SIGTERM drains in-flight requests, then flushes and closes the QoR
// log and blob store.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/qorlog"
	"repro/internal/remotecache"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	qorLog := flag.String("qor-log", "", "durable QoR log path: records survive a tier restart (empty = memory-only)")
	qorCache := flag.Int("qor-cache", 0, "in-memory QoR record cache entries in front of the log (0 = default)")
	blobDir := flag.String("blob-dir", "", "checkpoint blob directory (empty disables checkpoint sharing)")
	blobCap := flag.Int64("blob-cap-bytes", remotecache.DefaultBlobCapBytes, "checkpoint store byte cap; least-recently-used blobs evict beyond it")
	leaseTTL := flag.Duration("lease-ttl", remotecache.DefaultLeaseTTL, "work-lease TTL: how long a silent holder blocks siblings before they take over")
	maxBlob := flag.Int64("max-blob-bytes", 0, "largest accepted checkpoint blob (0 = default 64 MiB)")
	flag.Parse()

	var store *qorlog.Store
	if *qorLog != "" {
		var err error
		store, err = qorlog.OpenStore(*qorLog, *qorCache, qorlog.Options{})
		if err != nil {
			// Same degradation rule as chatlsd: an unopenable log is a
			// memory-only start, not a failed one.
			log.Printf("chatlscached: cannot open QoR log %s, running memory-only (records will not survive a restart): %v",
				*qorLog, err)
			store = qorlog.NewMemoryStore(*qorCache)
		} else {
			st := store.Stats()
			log.Printf("qor log %s: recovered %d record(s), dropped %d torn/corrupt byte(s)",
				*qorLog, st.Recovered, st.DroppedBytes)
		}
	} else {
		store = qorlog.NewMemoryStore(*qorCache)
	}

	var blobs *remotecache.BlobStore
	if *blobDir != "" {
		var err error
		blobs, err = remotecache.OpenBlobStore(*blobDir, *blobCap)
		if err != nil {
			log.Printf("chatlscached: cannot open blob dir %s, checkpoint sharing disabled: %v", *blobDir, err)
		} else {
			st := blobs.Stats()
			log.Printf("blob store %s: %d blob(s), %d byte(s)", *blobDir, st.Blobs, st.Bytes)
		}
	}

	srv := remotecache.NewServer(remotecache.ServerConfig{
		QoR:          store,
		Blobs:        blobs,
		LeaseTTL:     *leaseTTL,
		MaxBlobBytes: *maxBlob,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Println("shutting down: draining in-flight requests...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		srv.Close()
		if err := store.Close(); err != nil {
			log.Printf("shutdown: closing QoR log: %v", err)
		}
	}()

	log.Printf("chatlscached listening on %s (lease TTL %s)", *addr, *leaseTTL)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	<-done
	log.Println("chatlscached stopped")
}
