// Command chatls customizes a logic-synthesis script for a benchmark design
// from a natural-language requirement, through the pipeline of your choice:
//
//	chatls -design dynamic_node                 # full ChatLS pipeline
//	chatls -design aes -pipeline gpt4o          # raw GPT-4o-sim prompting
//	chatls -design jpeg -show-script -show-steps
//	chatls -design tinyRocket -req "minimize area, timing is met"
//
// The customized script is executed by the synthesis simulator and the
// before/after QoR is printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	chatls "repro"
	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/synth"
	"repro/internal/synthexpert"
)

func main() {
	designName := flag.String("design", "dynamic_node", "benchmark design name (aes, dynamic_node, ethmac, jpeg, riscv32i, swerv, tinyRocket)")
	pipeline := flag.String("pipeline", "chatls", "pipeline: chatls, gpt4o, claude")
	req := flag.String("req", chatls.DefaultRequirement, "natural-language requirement")
	k := flag.Int("k", 5, "Pass@k samples")
	seed := flag.Int64("seed", 20250706, "generation seed")
	showScript := flag.Bool("show-script", false, "print the best customized script")
	showSteps := flag.Bool("show-steps", false, "print SynthExpert's chain-of-thought steps")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget, baseline run included (0 = unlimited)")
	flag.Parse()

	d := designs.ByName(*designName)
	if d == nil {
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *designName)
		os.Exit(1)
	}
	lib := liberty.Nangate45()

	var p chatls.Pipeline
	switch *pipeline {
	case "gpt4o":
		p = &chatls.RawPipeline{Model: llm.New(llm.GPT4o, *seed)}
	case "claude":
		p = &chatls.RawPipeline{Model: llm.New(llm.Claude35, *seed)}
	case "chatls":
		fmt.Fprintln(os.Stderr, "building SynthRAG database...")
		db, err := chatls.BuildDatabase(chatls.ExperimentConfig{Seed: *seed, TrainEpochs: 40, Lib: lib})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		p = chatls.NewChatLS(llm.New(llm.GPT4o, *seed), db)
	default:
		fmt.Fprintf(os.Stderr, "unknown pipeline %q\n", *pipeline)
		os.Exit(1)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Override the requirement if given.
	task, baseQoR, err := chatls.NewTask(ctx, d, lib)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	task.Requirement = *req

	fmt.Printf("design %s @ %.2f ns  (baseline: WNS %.3f CPS %.3f TNS %.2f area %.1f)\n",
		d.Name, d.Period, baseQoR.WNS, baseQoR.CPS, baseQoR.TNS, baseQoR.Area)

	best := baseQoR
	bestScript := ""
	valid := 0
	rp, _ := p.(chatls.ResultPipeline)
	for s := 0; s < *k; s++ {
		var script string
		var steps []synthexpert.Step
		var err error
		if rp != nil {
			var cres chatls.Customization
			cres, err = rp.CustomizeResult(ctx, task, s)
			script, steps = cres.Script, cres.Steps
		} else {
			script, err = p.Customize(ctx, task, s)
		}
		if err != nil {
			fmt.Printf("  sample %d: customize failed: %v\n", s, err)
			continue
		}
		sess := synth.NewSession(lib)
		sess.AddSource(d.FileName, d.Source)
		res, err := sess.Run(script)
		if err != nil {
			fmt.Printf("  sample %d: script failed in tool: %v\n", s, err)
			continue
		}
		valid++
		q := *res.QoR
		marker := ""
		if bestScript == "" || chatls.BetterTiming(q, best) {
			best = q
			bestScript = script
			marker = "  <- best so far"
		}
		fmt.Printf("  sample %d: WNS %.3f CPS %.3f TNS %.2f area %.1f%s\n",
			s, q.WNS, q.CPS, q.TNS, q.Area, marker)
		if *showSteps && len(steps) > 0 && s == 0 {
			fmt.Println("  chain-of-thought steps:")
			for i, st := range steps {
				fmt.Printf("    T%d: %s\n", i+1, st.Thought)
				if st.Before != "" {
					fmt.Printf("        %q -> %q  (via %s)\n", st.Before, st.After, st.Retrieved)
				}
			}
		}
	}
	fmt.Printf("\nPass@%d: %d valid samples; best WNS %.3f CPS %.3f TNS %.2f area %.1f\n",
		*k, valid, best.WNS, best.CPS, best.TNS, best.Area)
	fmt.Printf("baseline -> customized: WNS %.3f -> %.3f, area %.1f -> %.1f\n",
		baseQoR.WNS, best.WNS, baseQoR.Area, best.Area)
	if *showScript && bestScript != "" {
		fmt.Println("\nbest script:")
		fmt.Println(bestScript)
	}
}
