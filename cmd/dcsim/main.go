// Command dcsim runs a dc_shell-style synthesis script against the logic
// synthesis simulator — the standalone face of the tool the ChatLS pipeline
// drives:
//
//	dcsim -design aes                      # run the aes baseline script
//	dcsim -design aes -script my.tcl       # run a script file against aes RTL
//	dcsim -verilog design.v -script my.tcl # run against RTL from disk
//	dcsim -validate -script my.tcl         # static checks only
//
// Script files may read_verilog any file name registered in the session: a
// benchmark design's RTL registers under its FileName (e.g. aes.v); RTL
// from -verilog registers under its base name.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/synth"
)

func main() {
	designName := flag.String("design", "", "benchmark design providing RTL (and the default script)")
	verilogPath := flag.String("verilog", "", "Verilog file to load instead of a benchmark design")
	scriptPath := flag.String("script", "", "script file to run (default: the design's baseline script)")
	validate := flag.Bool("validate", false, "only validate the script, do not run it")
	writeOut := flag.String("write", "", "write the final mapped netlist (structural Verilog) to this file")
	flag.Parse()

	var script string
	sess := synth.NewSession(liberty.Nangate45())

	if *designName != "" {
		d := designs.ByName(*designName)
		if d == nil {
			fail("unknown design %q", *designName)
		}
		sess.AddSource(d.FileName, d.Source)
		script = d.BaselineScript()
	}
	if *verilogPath != "" {
		data, err := os.ReadFile(*verilogPath)
		if err != nil {
			fail("read %s: %v", *verilogPath, err)
		}
		sess.AddSource(filepath.Base(*verilogPath), string(data))
	}
	if *scriptPath != "" {
		data, err := os.ReadFile(*scriptPath)
		if err != nil {
			fail("read %s: %v", *scriptPath, err)
		}
		script = string(data)
	}
	if script == "" {
		fail("nothing to run: give -design and/or -script")
	}

	if *validate {
		issues := synth.ValidateScript(script)
		if len(issues) == 0 {
			fmt.Println("script OK")
			return
		}
		for _, is := range issues {
			fmt.Println(is)
		}
		for _, is := range issues {
			if is.Severity == "error" {
				os.Exit(1)
			}
		}
		return
	}

	res, err := sess.Run(script)
	if err != nil {
		fail("script failed: %v", err)
	}
	for _, line := range res.Log {
		fmt.Println("log:", line)
	}
	for _, rep := range res.Reports {
		fmt.Println(rep)
	}
	if res.QoR != nil {
		q := res.QoR
		fmt.Printf("final QoR: WNS %.3f CPS %.3f TNS %.2f area %.2f cells %d\n",
			q.WNS, q.CPS, q.TNS, q.Area, q.Cells)
	}
	if *writeOut != "" && res.Design != nil {
		text := netlist.WriteVerilog(res.Design.NL)
		if err := os.WriteFile(*writeOut, []byte(text), 0o644); err != nil {
			fail("write %s: %v", *writeOut, err)
		}
		fmt.Printf("wrote mapped netlist to %s (%d bytes)\n", *writeOut, len(text))
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
