package chatls

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/qorlog"
)

// TestWarmRestartEquivalenceCorpus is the warm-restart contract over the
// benchmark corpus: a Pass@k evaluation logged to the durable QoR store,
// then replayed by a fresh store over the same file ("kill" the process,
// reopen), must produce results deeply equal to the cold run — every
// sample's QoR served from the log bit-identical to the computed one — and
// must actually serve from the log rather than re-synthesize.
func TestWarmRestartEquivalenceCorpus(t *testing.T) {
	corpus := designs.Benchmarks()
	if testing.Short() {
		corpus = corpus[:2]
	}
	lib := liberty.Nangate45()
	path := filepath.Join(t.TempDir(), "qor.log")
	ctx := context.Background()
	const k = 2

	run := func(store *qorlog.Store) []EvalResult {
		var out []EvalResult
		for _, d := range corpus {
			p := &RawPipeline{Model: llm.New(llm.GPT4o, ProtocolSeed)}
			res, err := RunPassKOpts(ctx, p, d, k, lib, EvalOptions{Results: store})
			if err != nil {
				t.Fatalf("%s: %v", d.Name, err)
			}
			out = append(out, res)
		}
		return out
	}

	cold, err := qorlog.OpenStore(path, 0, qorlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldResults := run(cold)
	if cold.Stats().Appends == 0 {
		t.Fatal("cold run must append outcomes to the log")
	}
	if err := cold.Close(); err != nil {
		t.Fatalf("close cold store: %v", err)
	}

	// The "restarted process": a fresh store replaying the same file.
	warm, err := qorlog.OpenStore(path, 0, qorlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	st := warm.Stats()
	if st.Warmed == 0 || st.DroppedBytes != 0 {
		t.Fatalf("restart must warm-fill from a clean log, stats %+v", st)
	}
	warmResults := run(warm)
	if !reflect.DeepEqual(coldResults, warmResults) {
		t.Fatal("warm-restarted evaluation differs from cold-computed results")
	}
	// Every sample whose script ran (invalid scripts are never logged) must
	// have been served from the log on the warm run.
	var valid int64
	for _, res := range coldResults {
		valid += int64(res.Valid)
	}
	st = warm.Stats()
	if valid == 0 {
		t.Fatal("corpus produced no valid samples; the test exercises nothing")
	}
	if st.Hits < valid {
		t.Fatalf("hits = %d, want >= %d (every valid sample served from the log)", st.Hits, valid)
	}
	if st.Appends != 0 {
		t.Fatalf("appends = %d, want 0 (unchanged inputs must not grow the log)", st.Appends)
	}
}
