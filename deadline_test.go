package chatls

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/designs"
	"repro/internal/llm"
	"repro/internal/overload"
	"repro/internal/qorlog"
)

// countingLeaseStore is a LeasedResultStore that records every interaction
// and never holds a result: it proves budget admission happens before any
// lease is claimed or record published.
type countingLeaseStore struct {
	mu       sync.Mutex
	gets     int
	puts     int
	acquires int
}

func (c *countingLeaseStore) Get(qorlog.Key) (qorlog.Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	return qorlog.Record{}, false
}

func (c *countingLeaseStore) Put(qorlog.Key, qorlog.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
}

func (c *countingLeaseStore) Acquire(context.Context, qorlog.Key) (qorlog.Record, bool, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.acquires++
	return qorlog.Record{}, false, func() {}
}

// TestDeadlineRejectedBeforeSynthesis: a context whose remaining budget
// cannot cover the expected work must be rejected up front — with an error
// wrapping overload.ErrBudget, no partial samples beyond the one that hit
// the check, and crucially no fleet-wide lease claimed and no record
// published. Covers the Pass@k evaluation and the Table IV sweep; the
// serving surface's equivalent (cost shed before pool submission) is
// TestCostShedRejectsBeforeAnyWork in internal/server.
func TestDeadlineRejectedBeforeSynthesis(t *testing.T) {
	d := designs.RiscV32i()
	cases := []struct {
		name string
		// prime seeds the cost model; budget is the context deadline.
		prime  func(*overload.CostModel)
		budget time.Duration
		run    func(ctx context.Context, costs *overload.CostModel, store *countingLeaseStore) (samples int, err error)
		// wantSamples is how many sample outcomes may have been recorded
		// before the rejection aborted the evaluation.
		wantSamples int
	}{
		{
			// The deadline is already gone: rejected before baseline
			// synthesis, zero samples, store never touched.
			name:   "passk expired deadline",
			prime:  func(*overload.CostModel) {},
			budget: -time.Millisecond,
			run: func(ctx context.Context, costs *overload.CostModel, store *countingLeaseStore) (int, error) {
				res, err := RunPassKOpts(ctx, &RawPipeline{Model: llm.New(llm.GPT4o, 7)}, d, 3, testLib,
					EvalOptions{Results: store, Costs: costs})
				return len(res.Samples), err
			},
			wantSamples: 0,
		},
		{
			// The per-sample estimate dwarfs the remaining budget: the
			// baseline runs (its own estimate is unknown, so it is
			// admitted), but sample 0 is rejected before customization —
			// no outcome recorded at all.
			name:   "passk sample budget too small",
			prime:  func(m *overload.CostModel) { m.Observe(overload.StageSample, time.Hour) },
			budget: 30 * time.Second,
			run: func(ctx context.Context, costs *overload.CostModel, store *countingLeaseStore) (int, error) {
				res, err := RunPassKOpts(ctx, &RawPipeline{Model: llm.New(llm.GPT4o, 7)}, d, 3, testLib,
					EvalOptions{Results: store, Costs: costs})
				return len(res.Samples), err
			},
			wantSamples: 0,
		},
		{
			// The synthesis estimate dwarfs the budget: generation runs
			// (cheap), but the sample is rejected after the result-cache
			// miss and before the lease claim — the one aborted sample is
			// recorded scriptless-QoR-less, and no sibling replica was
			// blocked on a lease this caller could never honor.
			name:   "passk synthesis budget rejects before lease",
			prime:  func(m *overload.CostModel) { m.Observe(overload.StageSynth, time.Hour) },
			budget: 30 * time.Second,
			run: func(ctx context.Context, costs *overload.CostModel, store *countingLeaseStore) (int, error) {
				res, err := RunPassKOpts(ctx, &RawPipeline{Model: llm.New(llm.GPT4o, 7)}, d, 3, testLib,
					EvalOptions{Results: store, Costs: costs})
				return len(res.Samples), err
			},
			wantSamples: 1,
		},
		{
			// The sweep inherits the same admission: an expired deadline
			// aborts Table IV before any baseline synthesis or publish.
			name:   "table4 expired deadline",
			prime:  func(*overload.CostModel) {},
			budget: -time.Millisecond,
			run: func(ctx context.Context, costs *overload.CostModel, store *countingLeaseStore) (int, error) {
				rows, err := Table4(ctx, ExperimentConfig{
					Lib: testLib, Designs: []*designs.Design{d},
					Results: store, Costs: costs,
				})
				return len(rows), err
			},
			wantSamples: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			costs := overload.NewCostModel(0)
			tc.prime(costs)
			store := &countingLeaseStore{}
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(tc.budget))
			defer cancel()

			samples, err := tc.run(ctx, costs, store)
			if !errors.Is(err, overload.ErrBudget) {
				t.Fatalf("err = %v, want wrapping overload.ErrBudget", err)
			}
			var be *overload.BudgetError
			if !errors.As(err, &be) {
				t.Errorf("err = %v, want a *overload.BudgetError naming the stage", err)
			}
			if samples != tc.wantSamples {
				t.Errorf("recorded samples/rows = %d, want %d", samples, tc.wantSamples)
			}
			store.mu.Lock()
			acquires, puts := store.acquires, store.puts
			store.mu.Unlock()
			if acquires != 0 {
				t.Errorf("lease acquires = %d, want 0 (rejected before the claim)", acquires)
			}
			if puts != 0 {
				t.Errorf("result puts = %d, want 0 (no partial work published)", puts)
			}
		})
	}
}
