package chatls

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index):
//
//	go test -bench BenchmarkTable2DatabaseBuild   # Table II corpus build
//	go test -bench BenchmarkTable4Baseline        # Table IV baselines
//	go test -bench BenchmarkTable3Comparison      # Table III Pass@5 comparison
//	go test -bench BenchmarkFig5SynthRAG          # Fig. 5 retrieval F1
//	go test -bench BenchmarkAblation              # component ablations
//
// Each benchmark logs the regenerated rows (visible with -v) and reports
// the experiment's headline metric via b.ReportMetric. cmd/experiments
// produces the same tables as standalone output.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/circuitmentor"
	"repro/internal/designs"
	"repro/internal/gnn"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/synth"
	"repro/internal/synthrag"
)

var (
	benchDBOnce sync.Once
	benchDB     *synthrag.Database
	benchDBErr  error
)

func sharedBenchDB(b *testing.B) *synthrag.Database {
	b.Helper()
	benchDBOnce.Do(func() {
		benchDB, benchDBErr = BuildDatabase(DefaultConfig())
	})
	if benchDBErr != nil {
		b.Fatal(benchDBErr)
	}
	return benchDB
}

// BenchmarkTable2DatabaseBuild measures the SynthRAG database construction:
// graph building, metric learning, and expert-draft synthesis of the
// Table II corpus under the full strategy palette.
func BenchmarkTable2DatabaseBuild(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		db, err := BuildDatabase(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + FormatTable2(Table2(db)))
			b.ReportMetric(float64(len(db.Strategies)), "designs")
		}
	}
}

// BenchmarkTable4Baseline regenerates Table IV: each benchmark synthesized
// with its adapted baseline script.
func BenchmarkTable4Baseline(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		rows, err := Table4(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + FormatTable4(rows))
			violations := 0
			for _, r := range rows {
				if r.QoR.WNS < 0 {
					violations++
				}
			}
			b.ReportMetric(float64(violations), "violating_designs")
		}
	}
}

// BenchmarkTable3Comparison regenerates Table III: the three pipelines
// customize every benchmark's script at Pass@5.
func BenchmarkTable3Comparison(b *testing.B) {
	db := sharedBenchDB(b)
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		rows, err := Table3(context.Background(), cfg, db)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + FormatTable3(rows))
			// Headline: on how many designs does ChatLS match-or-beat both
			// raw models on WNS? (Paper: all of them.)
			wins := 0
			for _, r := range rows {
				chatWNS := r.Cells[2].QoR.WNS
				if chatWNS >= r.Cells[0].QoR.WNS && chatWNS >= r.Cells[1].QoR.WNS {
					wins++
				}
			}
			b.ReportMetric(float64(wins), "chatls_wins_or_ties")
		}
	}
}

// BenchmarkFig5SynthRAG regenerates Fig. 5: retrieval F1 over generated SoC
// configurations for SynthRAG and its ablations.
func BenchmarkFig5SynthRAG(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		points, err := Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + FormatFig5(points))
			for _, p := range points {
				if p.Variant == "synthrag" && p.Category == "overall" {
					b.ReportMetric(p.F1, "synthrag_macro_f1")
				}
			}
		}
	}
}

// BenchmarkAblation regenerates the component ablation study.
func BenchmarkAblation(b *testing.B) {
	db := sharedBenchDB(b)
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		rows, err := Ablations(context.Background(), cfg, db)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + FormatAblations(rows))
		}
	}
}

// BenchmarkRerankSweep regenerates the Eq. 5 rerank-weight ablation.
func BenchmarkRerankSweep(b *testing.B) {
	db := sharedBenchDB(b)
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		points, err := RerankSweep(cfg, db)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + FormatRerankSweep(points))
			for _, p := range points {
				if p.Alpha == 0.7 && p.Gamma == 0.25 {
					b.ReportMetric(p.TraitMatch, "trait_match_full_rerank")
				}
			}
		}
	}
}

// ----------------------------------------------------------------------------
// Substrate micro-benchmarks: the building blocks' standalone cost.

// BenchmarkElaborateJPEG measures RTL-to-netlist elaboration of the largest
// benchmark (jpeg: multiplier bank under deep wrapper hierarchy).
func BenchmarkElaborateJPEG(b *testing.B) {
	d := designs.JPEG()
	lib := liberty.Nangate45()
	for i := 0; i < b.N; i++ {
		sess := synth.NewSession(lib)
		sess.AddSource(d.FileName, d.Source)
		if _, err := sess.Run("read_verilog " + d.FileName + "\ncurrent_design " + d.Top + "\nlink\n"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileUltraSwerv measures a full compile_ultra flow on the
// largest CPU benchmark.
func BenchmarkCompileUltraSwerv(b *testing.B) {
	d := designs.SweRV()
	lib := liberty.Nangate45()
	script := llm.SpliceScript(d.BaselineScript(), []string{"compile_ultra -retime"})
	for i := 0; i < b.N; i++ {
		sess := synth.NewSession(lib)
		sess.AddSource(d.FileName, d.Source)
		if _, err := sess.Run(script); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileUltraSwervCheckpointed is BenchmarkCompileUltraSwerv with
// a warmed elaboration-checkpoint store: every iteration restores SweRV's
// post-link state from the snapshot instead of re-parsing and
// re-elaborating, leaving only the compile_ultra flow itself. The ratio to
// the uncheckpointed benchmark is the Pass@k repeat-run speedup.
func BenchmarkCompileUltraSwervCheckpointed(b *testing.B) {
	d := designs.SweRV()
	lib := liberty.Nangate45()
	script := llm.SpliceScript(d.BaselineScript(), []string{"compile_ultra -retime"})
	store := synth.NewCheckpointStore(0)
	warm := synth.NewSession(lib)
	warm.Checkpoints = store
	warm.AddSource(d.FileName, d.Source)
	if _, err := warm.Run(script); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := synth.NewSession(lib)
		sess.Checkpoints = store
		sess.AddSource(d.FileName, d.Source)
		if _, err := sess.Run(script); err != nil {
			b.Fatal(err)
		}
	}
	if store.Stats().Hits == 0 {
		b.Fatal("no checkpoint hits: the store never restored")
	}
}

// BenchmarkCheckpointRestore isolates the restore path itself: elaborate
// SweRV once, then measure only the snapshot-clone-and-resume of the link
// prefix (no compile). Compare against BenchmarkElaborateJPEG-style fresh
// elaboration to see what a hit saves.
func BenchmarkCheckpointRestore(b *testing.B) {
	d := designs.SweRV()
	lib := liberty.Nangate45()
	prefix := "read_verilog " + d.FileName + "\ncurrent_design " + d.Top + "\nlink\n"
	store := synth.NewCheckpointStore(0)
	warm := synth.NewSession(lib)
	warm.Checkpoints = store
	warm.AddSource(d.FileName, d.Source)
	if _, err := warm.Run(prefix); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := synth.NewSession(lib)
		sess.Checkpoints = store
		sess.AddSource(d.FileName, d.Source)
		if _, err := sess.Run(prefix); err != nil {
			b.Fatal(err)
		}
	}
	if store.Stats().Hits == 0 {
		b.Fatal("no checkpoint hits: the store never restored")
	}
}

// BenchmarkCustomizeChatLS measures one end-to-end ChatLS customization
// (analysis + retrieval + generation + CoT refinement), excluding the
// synthesis run.
func BenchmarkCustomizeChatLS(b *testing.B) {
	db := sharedBenchDB(b)
	lib := liberty.Nangate45()
	task, _, err := NewTask(context.Background(), designs.DynamicNode(), lib)
	if err != nil {
		b.Fatal(err)
	}
	p := NewChatLS(llm.New(llm.GPT4o, 1), db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Customize(context.Background(), task, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmbedDesignUncached and BenchmarkEmbedDesignCached quantify what
// the serving layer's embedding cache saves per request: the uncached path
// re-parses the RTL and runs the GNN forward pass every time, the cached
// path answers warm repeats from the LRU.
func BenchmarkEmbedDesignUncached(b *testing.B) {
	db, err := synthrag.Build(synthrag.BuildConfig{Seed: 2, SkipSynth: true, Lib: liberty.Nangate45()})
	if err != nil {
		b.Fatal(err)
	}
	d := designs.RiscV32i()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.EmbedDesign(d.Source, d.Top); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedDesignCached(b *testing.B) {
	db, err := synthrag.Build(synthrag.BuildConfig{Seed: 2, SkipSynth: true, Lib: liberty.Nangate45()})
	if err != nil {
		b.Fatal(err)
	}
	db.EnableCache(8, 8)
	d := designs.RiscV32i()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.EmbedDesign(d.Source, d.Top); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGraphs parses the benchmark designs into design graphs once, for the
// embedding-batch benchmarks.
func benchGraphs(b *testing.B) []*circuitmentor.DesignGraph {
	b.Helper()
	var dgs []*circuitmentor.DesignGraph
	for _, d := range designs.Benchmarks() {
		dg, err := circuitmentor.BuildGraph(d.Source, d.Top)
		if err != nil {
			b.Fatal(err)
		}
		dgs = append(dgs, dg)
	}
	return dgs
}

// BenchmarkEmbedGlobalSerial and BenchmarkEmbedGlobalBatched compare the two
// ways of embedding N concurrent designs: one GNN forward pass per design
// versus a single stacked forward over their disjoint union — the work the
// continuous-batching admission queue coalesces. Their ns/op ratio is the
// per-flush speedup of batching (results are byte-identical; see
// gnn.EmbedBatch).
func BenchmarkEmbedGlobalSerial(b *testing.B) {
	db, err := synthrag.Build(synthrag.BuildConfig{Seed: 2, SkipSynth: true, Lib: liberty.Nangate45()})
	if err != nil {
		b.Fatal(err)
	}
	dgs := benchGraphs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dg := range dgs {
			if emb := db.Mentor.EmbedGlobal(dg); len(emb) == 0 {
				b.Fatal("empty embedding")
			}
		}
	}
	b.ReportMetric(float64(len(dgs)), "graphs/op")
}

func BenchmarkEmbedGlobalBatched(b *testing.B) {
	db, err := synthrag.Build(synthrag.BuildConfig{Seed: 2, SkipSynth: true, Lib: liberty.Nangate45()})
	if err != nil {
		b.Fatal(err)
	}
	dgs := benchGraphs(b)
	gs := make([]*gnn.Graph, len(dgs))
	for i, dg := range dgs {
		gs[i] = dg.G
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		embs := db.Mentor.Model.EmbedGlobalBatch(gs)
		if len(embs) != len(gs) {
			b.Fatal("short batch result")
		}
	}
	b.ReportMetric(float64(len(gs)), "graphs/op")
}

// BenchmarkIterativeClosure regenerates the iterative-resynthesis study:
// ChatLS applied for three rounds on the designs whose closure needs (or
// resists) iteration.
func BenchmarkIterativeClosure(b *testing.B) {
	db := sharedBenchDB(b)
	cfg := DefaultConfig()
	cfg.Designs = []*designs.Design{designs.EthMAC(), designs.TinyRocket(), designs.JPEG()}
	for i := 0; i < b.N; i++ {
		rows, err := IterativeClosure(context.Background(), cfg, db, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + FormatIterations(rows))
		}
	}
}
