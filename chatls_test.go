package chatls

import (
	"context"
	"strings"
	"testing"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/synth"
	"repro/internal/synthrag"
)

var (
	testLib    = liberty.Nangate45()
	testDBFull *synthrag.Database
)

func fullDB(t *testing.T) *synthrag.Database {
	t.Helper()
	if testDBFull == nil {
		db, err := synthrag.Build(synthrag.BuildConfig{Seed: 20250706, TrainEpochs: 40, Lib: testLib})
		if err != nil {
			t.Fatal(err)
		}
		testDBFull = db
	}
	return testDBFull
}

func TestNewTaskRunsBaseline(t *testing.T) {
	task, q, err := NewTask(context.Background(), designs.RiscV32i(), testLib)
	if err != nil {
		t.Fatal(err)
	}
	if q.WNS < 0 {
		t.Errorf("riscv32i baseline should meet timing, WNS %.3f", q.WNS)
	}
	if !strings.Contains(task.BaselineReport, "report_qor") {
		t.Error("baseline report missing")
	}
	if task.Requirement == "" || task.Baseline == "" {
		t.Error("task incomplete")
	}
}

func TestRawPipelineProducesRunnableScriptsSometimes(t *testing.T) {
	p := &RawPipeline{Model: llm.New(llm.GPT4o, 1)}
	res, err := RunPassK(context.Background(), p, designs.RiscV32i(), 5, testLib)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid == 0 {
		t.Error("all 5 raw samples failed; hallucination rate should not be 100%")
	}
	if res.Valid == 5 {
		t.Log("note: all raw samples valid this seed (possible but unusual)")
	}
	if res.K != 5 || len(res.Samples) != 5 {
		t.Errorf("sample bookkeeping wrong: %+v", res)
	}
}

func TestChatLSAllSamplesValid(t *testing.T) {
	if testing.Short() {
		t.Skip("database build is slow")
	}
	p := NewChatLS(llm.New(llm.GPT4o, 20250706), fullDB(t))
	res, err := RunPassK(context.Background(), p, designs.DynamicNode(), 5, testLib)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid != 5 {
		t.Errorf("SynthExpert refinement should make every sample runnable, valid = %d", res.Valid)
		for i, s := range res.Samples {
			if s.Err != "" {
				t.Logf("sample %d error: %s\nscript:\n%s", i, s.Err, s.Script)
			}
		}
	}
	if !res.Improved() {
		t.Errorf("ChatLS should beat the dynamic_node baseline: baseline %+v best %+v", res.Baseline, res.Best)
	}
}

func TestChatLSBeatsRawOnTraitDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("database build is slow")
	}
	db := fullDB(t)
	d := designs.AES()
	raw, err := RunPassK(context.Background(), &RawPipeline{Model: llm.New(llm.GPT4o, 20250706)}, d, 5, testLib)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := RunPassK(context.Background(), NewChatLS(llm.New(llm.GPT4o, 20250706), db), d, 5, testLib)
	if err != nil {
		t.Fatal(err)
	}
	if !BetterTiming(cls.Best, raw.Best) && cls.Best.WNS != raw.Best.WNS {
		t.Errorf("ChatLS (%.3f) should not lose to raw (%.3f) on aes", cls.Best.WNS, raw.Best.WNS)
	}
	if cls.Best.WNS < 0 {
		t.Errorf("ChatLS should close aes timing (retiming-bound), WNS %.3f", cls.Best.WNS)
	}
}

func TestChatLSRecordsCoTSteps(t *testing.T) {
	if testing.Short() {
		t.Skip("database build is slow")
	}
	p := NewChatLS(llm.New(llm.GPT4o, 20250706), fullDB(t))
	task, _, err := NewTask(context.Background(), designs.TinyRocket(), testLib)
	if err != nil {
		t.Fatal(err)
	}
	// Find a sample whose draft needed revision: steps list non-empty on
	// most samples because reports are re-checked and reordered.
	sawStep := false
	for s := 0; s < 5; s++ {
		if _, err := p.Customize(context.Background(), task, s); err != nil {
			t.Fatal(err)
		}
		if len(p.LastSteps) > 0 {
			sawStep = true
		}
	}
	if !sawStep {
		t.Error("no chain-of-thought steps recorded across 5 samples")
	}
}

func TestBetterTimingOrdering(t *testing.T) {
	a := synth.QoR{WNS: 0, CPS: 0.5, Area: 100}
	b := synth.QoR{WNS: -0.1, CPS: -0.1, Area: 50}
	if !BetterTiming(a, b) {
		t.Error("meeting timing must beat violating regardless of area")
	}
	c := synth.QoR{WNS: 0, CPS: 0.5, Area: 90}
	if !BetterTiming(c, a) {
		t.Error("same timing, smaller area must win")
	}
	d := synth.QoR{WNS: 0, CPS: 0.9, Area: 200}
	if !BetterTiming(d, a) {
		t.Error("higher CPS must win when WNS ties")
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(context.Background(), ExperimentConfig{Lib: testLib})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	// The paper's baseline sign pattern: aes, ethmac, jpeg, tinyRocket
	// violate; riscv32i and swerv meet.
	wantViolate := map[string]bool{
		"aes": true, "ethmac": true, "jpeg": true, "tinyRocket": true,
		"riscv32i": false, "swerv": false,
	}
	for _, r := range rows {
		want, ok := wantViolate[r.Design]
		if !ok {
			continue
		}
		if want && r.QoR.WNS >= 0 {
			t.Errorf("%s baseline should violate, WNS %.3f", r.Design, r.QoR.WNS)
		}
		if !want && r.QoR.WNS < 0 {
			t.Errorf("%s baseline should meet, WNS %.3f", r.Design, r.QoR.WNS)
		}
	}
	text := FormatTable4(rows)
	if !strings.Contains(text, "TABLE IV") || !strings.Contains(text, "aes") {
		t.Error("Table IV formatting broken")
	}
}

func TestFig5SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("retrieval experiment is slow")
	}
	cfg := ExperimentConfig{Seed: 7, TrainEpochs: 30, SoCCount: 6, Lib: testLib}
	points, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f1 := map[string]float64{}
	for _, p := range points {
		if p.Category == "overall" {
			f1[p.Variant] = p.F1
		}
	}
	if len(f1) != len(Fig5Variants) {
		t.Fatalf("missing variants: %v", f1)
	}
	if f1["synthrag"] < 0.6 {
		t.Errorf("SynthRAG macro F1 too low: %.3f", f1["synthrag"])
	}
	if f1["synthrag"] < f1["text-only"] {
		t.Errorf("SynthRAG (%.3f) should beat text-only retrieval (%.3f)", f1["synthrag"], f1["text-only"])
	}
	if f1["synthrag"] < f1["no-metric-learning"] {
		t.Errorf("metric learning (%.3f) should not hurt retrieval (%.3f)", f1["synthrag"], f1["no-metric-learning"])
	}
	if !strings.Contains(FormatFig5(points), "overall") {
		t.Error("Fig5 formatting broken")
	}
}

func TestAblationVariantNames(t *testing.T) {
	db, err := synthrag.Build(synthrag.BuildConfig{Seed: 2, SkipSynth: true, Lib: testLib})
	if err != nil {
		t.Fatal(err)
	}
	m := llm.New(llm.GPT4o, 2)
	full := NewChatLS(m, db)
	if full.Name() != "chatls" {
		t.Errorf("name = %s", full.Name())
	}
	noRAG := NewChatLS(m, db)
	noRAG.DisableRAG = true
	if noRAG.Name() != "chatls-norag" {
		t.Errorf("name = %s", noRAG.Name())
	}
	noExp := NewChatLS(m, db)
	noExp.DisableExpert = true
	if noExp.Name() != "chatls-noexpert" {
		t.Errorf("name = %s", noExp.Name())
	}
}

func TestPipelinePromptsDiffer(t *testing.T) {
	// The raw prompt must carry RTL; the ChatLS prompt must not (it gets
	// characteristics + retrieved strategies instead). This is the paper's
	// core structural difference.
	db, err := synthrag.Build(synthrag.BuildConfig{Seed: 2, SkipSynth: true, Lib: testLib})
	if err != nil {
		t.Fatal(err)
	}
	task, _, err := NewTask(context.Background(), designs.RiscV32i(), testLib)
	if err != nil {
		t.Fatal(err)
	}
	p := NewChatLS(llm.New(llm.GPT4o, 2), db)
	script, err := p.Customize(context.Background(), task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if script == "" {
		t.Fatal("empty script")
	}
	issues := synth.ValidateScript(script)
	for _, is := range issues {
		if is.Severity == "error" {
			t.Errorf("ChatLS script invalid: %v\n%s", is, script)
		}
	}
}
